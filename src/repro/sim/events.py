"""Simulation clock and event heap.

A minimal, deterministic discrete-event engine: events are ``(time, seq,
callback)`` triples on a binary heap; ties in time are broken by insertion
order (``seq``), which makes every run bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Set, Tuple

from repro.telemetry.profile import NULL_PROFILER, PhaseProfiler

__all__ = [
    "EventLoop",
    "EventHandle",
    "TypedEventLoop",
    "TypedEventHandle",
    "EVENT_FINISH",
    "EVENT_READY",
    "EVENT_CALLBACK",
]

#: Phase name under which event dispatch is attributed when profiling.
DISPATCH_PHASE = "sim/dispatch"

#: Typed-event kinds of :class:`TypedEventLoop`.  Integer tags instead of
#: closures keep the hot path free of per-event allocation: a task-finish
#: or consumer-ready event is five machine words on the heap.
EVENT_FINISH = 0
EVENT_READY = 1
EVENT_CALLBACK = 2


class EventHandle:
    """Handle to a scheduled event; allows O(1) cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    The loop does not run free — callers advance it explicitly with
    :meth:`run_until`, which matches the paper's time-window structure:
    the controller acts, then the world advances by one window.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        profiler: Optional[PhaseProfiler] = None,
    ):
        self._now = start_time
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._processed = 0
        #: Phase profiler attributing dispatch time; the disabled
        #: NULL_PROFILER by default, so the untraced hot path pays one
        #: attribute read and a branch per run_until call (not per event).
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when!r}, now={self._now!r})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (when, next(self._seq), handle, callback))
        return handle

    def run_until(self, when: float, max_events: Optional[int] = None) -> int:
        """Execute all events with timestamp <= ``when``; advance the clock.

        Returns the number of events executed.  ``max_events`` is a safety
        valve for tests; exceeding it raises ``RuntimeError`` (it would mean
        a runaway self-scheduling loop).
        """
        # Drop cancelled events sitting at the head of the heap before
        # entering the dispatch phase: they execute nothing, so their
        # removal should cost neither a tuple unpack nor profiler
        # attribution.  (Events are never scheduled in the past, so this
        # cannot consume anything a backwards run_until should reject.)
        heap = self._heap
        while heap and heap[0][0] <= when and heap[0][2].cancelled:
            heapq.heappop(heap)
        # Only attribute the dispatch phase when something will actually
        # dispatch: after the drain above, a due head is non-cancelled.
        # A cancelled-only (or empty) window just advances the clock.
        if self.profiler.enabled and heap and heap[0][0] <= when:
            with self.profiler.phase(DISPATCH_PHASE):
                return self._run_until(when, max_events)
        return self._run_until(when, max_events)

    def _run_until(self, when: float, max_events: Optional[int]) -> int:
        if when < self._now:
            raise ValueError(
                f"cannot run backwards (when={when!r}, now={self._now!r})"
            )
        executed = 0
        while self._heap and self._heap[0][0] <= when:
            # Peek before unpacking: cancelled heads are popped and
            # dropped without building locals for time/seq/callback.
            if self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
                continue
            event_time, _, _handle, callback = heapq.heappop(self._heap)
            self._now = event_time
            callback()
            executed += 1
            self._processed += 1
            if max_events is not None and executed > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} before reaching t={when}"
                )
        self._now = when
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLoop(now={self._now:.3f}, pending={self.pending})"


class TypedEventHandle:
    """Cancellation handle for a :class:`TypedEventLoop` event.

    API-compatible with :class:`EventHandle` (``cancel()`` plus a
    ``cancelled`` flag) so arrival processes and chaos injectors work
    against either loop.
    """

    __slots__ = ("_loop", "_token", "cancelled")

    def __init__(self, loop: "TypedEventLoop", token: int):
        self._loop = loop
        self._token = token
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._loop.cancel(self._token)


class TypedEventLoop:
    """Deterministic event loop over typed ``(time, seq, kind, a, b)`` rows.

    Drop-in for :class:`EventLoop` on the batched substrate.  Two hot
    event kinds — task finish (:data:`EVENT_FINISH`) and consumer ready
    (:data:`EVENT_READY`) — carry ``(microservice index, consumer slot)``
    integer payloads and dispatch through two executors bound once at
    construction, so the per-event cost is a heap pop plus one call: no
    closure allocation, no handle object.  Arbitrary callbacks
    (:data:`EVENT_CALLBACK`, used by arrival processes and the chaos
    injector) ride the same heap.

    Determinism contract (identical to :class:`EventLoop`): ties in time
    break by insertion order ``seq``; cancelled events are skipped
    without counting toward ``processed``.  The sequence counter is
    shared by every kind, so a batched run schedules the same ``seq``
    values as the serial run it mirrors.

    The loop additionally tracks how many callback/ready events are
    pending and whether any cancellation is outstanding — the
    preconditions the vectorised window fast path of
    :class:`repro.sim.batched.BatchedWorkflowSystem` checks before it
    bypasses the heap (see docs/SIMULATOR.md).
    """

    def __init__(
        self,
        start_time: float = 0.0,
        profiler: Optional[PhaseProfiler] = None,
    ):
        self._now = start_time
        # Rows: (when, seq, kind, a, b).  ``seq`` is unique, so tuple
        # comparison never reaches the payload and callables can ride in
        # slot ``a`` safely.
        self._heap: List[Tuple[float, int, int, object, int]] = []
        self._seq_next = 0
        self._processed = 0
        self._cancelled: Set[int] = set()
        self._ready_pending = 0
        self._callback_pending = 0
        self._on_finish: Optional[Callable[[int, int], None]] = None
        self._on_ready: Optional[Callable[[int, int], None]] = None
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    def bind_executors(
        self,
        on_finish: Callable[[int, int], None],
        on_ready: Callable[[int, int], None],
    ) -> None:
        """Install the two typed-event executors (once, at wiring time)."""
        self._on_finish = on_finish
        self._on_ready = on_ready

    # Introspection -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def only_finish_events_pending(self) -> bool:
        """True when the heap holds nothing but live task-finish events.

        This is the fast-path gate: no arrival/chaos callbacks, no
        consumer activations, and no cancelled rows awaiting lazy
        removal — every pending row is a ``(ms, slot)`` finish whose
        timing the vectorised window replay can reproduce exactly.
        """
        return (
            self._callback_pending == 0
            and self._ready_pending == 0
            and not self._cancelled
        )

    # Scheduling --------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> TypedEventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(
        self, when: float, callback: Callable[[], None]
    ) -> TypedEventHandle:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when!r}, now={self._now!r})"
            )
        seq = self._seq_next
        self._seq_next = seq + 1
        self._callback_pending += 1
        heapq.heappush(self._heap, (when, seq, EVENT_CALLBACK, callback, 0))
        return TypedEventHandle(self, seq)

    def schedule_finish(self, delay: float, ms_index: int, slot: int) -> int:
        """Schedule a task-finish event; returns its cancellation token."""
        seq = self._seq_next
        self._seq_next = seq + 1
        heapq.heappush(
            self._heap, (self._now + delay, seq, EVENT_FINISH, ms_index, slot)
        )
        return seq

    def schedule_ready(self, delay: float, ms_index: int, slot: int) -> int:
        """Schedule a consumer-ready event; returns its cancellation token."""
        seq = self._seq_next
        self._seq_next = seq + 1
        self._ready_pending += 1
        heapq.heappush(
            self._heap, (self._now + delay, seq, EVENT_READY, ms_index, slot)
        )
        return seq

    def cancel(self, token: int) -> None:
        """Cancel a scheduled event by token (lazy removal on pop)."""
        self._cancelled.add(token)

    # Execution ---------------------------------------------------------
    def run_until(self, when: float, max_events: Optional[int] = None) -> int:
        """Execute all events with timestamp <= ``when``; advance the clock.

        Semantics match :meth:`EventLoop.run_until`: events fire in
        ``(time, seq)`` order, cancelled rows are dropped without
        counting, and ``max_events`` guards against runaway loops.
        """
        if self.profiler.enabled and self._heap and self._heap[0][0] <= when:
            with self.profiler.phase(DISPATCH_PHASE):
                return self._run_until(when, max_events)
        return self._run_until(when, max_events)

    def _run_until(self, when: float, max_events: Optional[int]) -> int:
        if when < self._now:
            raise ValueError(
                f"cannot run backwards (when={when!r}, now={self._now!r})"
            )
        executed = 0
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][0] <= when:
            event_time, seq, kind, a, b = heapq.heappop(heap)
            if seq in cancelled:
                cancelled.discard(seq)
                if kind == EVENT_READY:
                    self._ready_pending -= 1
                elif kind == EVENT_CALLBACK:
                    self._callback_pending -= 1
                continue
            self._now = event_time
            if kind == EVENT_FINISH:
                self._on_finish(a, b)
            elif kind == EVENT_READY:
                self._ready_pending -= 1
                self._on_ready(a, b)
            else:
                self._callback_pending -= 1
                a()
            executed += 1
            self._processed += 1
            if max_events is not None and executed > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} before reaching t={when}"
                )
        self._now = when
        return executed

    # Fast-path surface --------------------------------------------------
    # The vectorised window replay (repro.sim.batched) pops every due
    # finish event, re-simulates the window arithmetically, and commits
    # the result back through these three methods.  They are only legal
    # while ``only_finish_events_pending`` holds — the caller checks.
    def pop_due_finish_events(
        self, when: float
    ) -> List[Tuple[float, int, int, int]]:
        """Pop all finish events with timestamp <= ``when``, heap-ordered."""
        heap = self._heap
        due: List[Tuple[float, int, int, int]] = []
        while heap and heap[0][0] <= when:
            event_time, seq, _kind, ms_index, slot = heapq.heappop(heap)
            due.append((event_time, seq, ms_index, slot))
        return due

    def push_finish_event(
        self, when: float, seq: int, ms_index: int, slot: int
    ) -> None:
        """Re-insert a finish event with an explicit sequence number."""
        heapq.heappush(self._heap, (when, seq, EVENT_FINISH, ms_index, slot))

    def commit_fast_window(self, when: float, executed: int, seqs: int) -> None:
        """Advance clock and counters for a vectorised window replay.

        ``executed`` events were replayed arithmetically and ``seqs``
        sequence numbers consumed — exactly what the exact loop would
        have popped and allocated event by event.
        """
        self._now = when
        self._processed += executed
        self._seq_next += seqs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypedEventLoop(now={self._now:.3f}, pending={self.pending})"
