"""Message queue with acknowledgement semantics (RabbitMQ analog).

The paper: "We employ an acknowledgement mechanism between RabbitMQ message
queues and consumers to guarantee that task requests (and the workflows they
belong to) do not get lost in the system."  This module reproduces the
contract a consumer sees:

- ``consume()`` hands out the oldest ready message with a delivery tag and
  moves it to the *unacked* set,
- ``ack(tag)`` removes it permanently,
- ``nack(tag)`` (consumer died mid-processing, e.g. a scale-down kill)
  requeues the message at the **front** so redelivery preserves ordering.

WIP ("work-in-progress", the paper's state signal) is ready + unacked.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.requests import TaskRequest
from repro.telemetry.tracer import NULL_TRACER, Tracer
from repro.utils.batchpairs import batched_pair

__all__ = ["AckQueue", "DeliveryTag", "QueueError", "IndexFifo"]

DeliveryTag = int


class QueueError(RuntimeError):
    """Raised on protocol violations (double ack, unknown tag, ...)."""


class AckQueue:
    """FIFO task-request queue with unacked-message tracking."""

    def __init__(self, name: str, tracer: Optional[Tracer] = None):
        if not name:
            raise ValueError("queue name must be non-empty")
        self.name = name
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._ready: Deque[TaskRequest] = deque()
        self._unacked: Dict[DeliveryTag, TaskRequest] = {}
        self._tags = itertools.count(1)
        self._subscribers: List[Callable[[], None]] = []
        # Lifetime counters for metrics / conservation checks.
        self.published_total = 0
        self.acked_total = 0
        self.redelivered_total = 0

    # Publishing --------------------------------------------------------
    def publish(self, request: TaskRequest) -> None:
        """Append a task request and wake subscribers."""
        if request.task_type != self.name:
            raise QueueError(
                f"request for task {request.task_type!r} published to "
                f"queue {self.name!r}"
            )
        self._ready.append(request)
        self.published_total += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "event.publish", queue=self.name, depth=self.depth
            )
        self._notify()

    def subscribe(self, callback: Callable[[], None]) -> None:
        """Register a callback fired after every publish/requeue.

        The microservice uses this to wake idle consumers, mirroring
        RabbitMQ's push delivery.
        """
        self._subscribers.append(callback)

    def _notify(self) -> None:
        for callback in list(self._subscribers):
            callback()

    # Consumption -------------------------------------------------------
    def consume(self) -> Optional[Tuple[DeliveryTag, TaskRequest]]:
        """Pop the oldest ready message; ``None`` when the queue is empty.

        The message stays in the unacked set until :meth:`ack` or
        :meth:`nack`.
        """
        if not self._ready:
            return None
        request = self._ready.popleft()
        request.deliveries += 1
        tag = next(self._tags)
        self._unacked[tag] = request
        return tag, request

    def ack(self, tag: DeliveryTag) -> TaskRequest:
        """Acknowledge successful processing; the message leaves the system."""
        request = self._unacked.pop(tag, None)
        if request is None:
            raise QueueError(f"unknown or already-settled delivery tag {tag}")
        self.acked_total += 1
        return request

    def nack(self, tag: DeliveryTag) -> TaskRequest:
        """Negative-acknowledge: requeue at the front for redelivery."""
        request = self._unacked.pop(tag, None)
        if request is None:
            raise QueueError(f"unknown or already-settled delivery tag {tag}")
        self._ready.appendleft(request)
        self.redelivered_total += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "event.redeliver", queue=self.name, depth=self.depth
            )
        self._notify()
        return request

    # Introspection ------------------------------------------------------
    @property
    def ready_count(self) -> int:
        """Messages waiting in the queue."""
        return len(self._ready)

    @property
    def unacked_count(self) -> int:
        """Messages delivered to a consumer but not yet settled."""
        return len(self._unacked)

    @property
    def depth(self) -> int:
        """Work-in-progress: waiting + being processed (the paper's w_j)."""
        return len(self._ready) + len(self._unacked)

    def conservation_ok(self) -> bool:
        """published == acked + ready + unacked (no message ever lost)."""
        return self.published_total == (
            self.acked_total + self.ready_count + self.unacked_count
        )

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AckQueue({self.name!r}, ready={self.ready_count}, "
            f"unacked={self.unacked_count})"
        )


class IndexFifo:
    """FIFO of integer task indices on a flat numpy buffer.

    The batched substrate's replacement for :class:`AckQueue`'s deque of
    request objects: the queue holds ``int64`` indices into a
    :class:`repro.sim.requests.RequestPool`, stored contiguously between
    a moving ``head`` and ``tail``.  Dequeues advance ``head`` (O(1),
    batched dequeues are a pointer add); enqueues append at ``tail`` and
    are vectorised via :meth:`push_many`.  ``push_front`` reinserts a
    redelivered index at the head, preserving the ack mechanism's
    front-of-queue redelivery ordering.

    The buffer compacts (or doubles) only when ``tail`` hits capacity,
    so a window that enqueues and dequeues thousands of indices touches
    numpy exactly twice.
    """

    __slots__ = ("_buf", "_head", "_tail")

    #: Slack kept in front of the data after a compaction so that
    #: ``push_front`` (redelivery) rarely needs a shift of its own.
    _FRONT_SLACK = 16

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf = np.empty(capacity + self._FRONT_SLACK, dtype=np.int64)
        self._head = self._FRONT_SLACK
        self._tail = self._FRONT_SLACK

    def __len__(self) -> int:
        return self._tail - self._head

    def _make_room(self, extra: int) -> None:
        """Ensure ``extra`` more slots fit after ``tail``."""
        size = self._tail - self._head
        needed = size + extra + self._FRONT_SLACK
        data = self._buf[self._head:self._tail].copy()
        if needed > self._buf.size:
            self._buf = np.empty(
                max(needed, 2 * self._buf.size), dtype=np.int64
            )
        self._buf[self._FRONT_SLACK:self._FRONT_SLACK + size] = data
        self._head = self._FRONT_SLACK
        self._tail = self._FRONT_SLACK + size

    def push(self, value: int) -> None:
        """Append one index at the tail."""
        if self._tail == self._buf.size:
            self._make_room(1)
        self._buf[self._tail] = value
        self._tail += 1

    @batched_pair("push", shapes="(K,) -> _")
    def push_many(self, values) -> None:
        """Append a batch of indices at the tail, in order.

        Row ``k`` of ``values`` lands exactly where ``k`` serial
        :meth:`push` calls would have put it.
        """
        values = np.asarray(values, dtype=np.int64)
        n = values.size
        if n == 0:
            return
        if self._tail + n > self._buf.size:
            self._make_room(n)
        self._buf[self._tail:self._tail + n] = values
        self._tail += n

    def push_front(self, value: int) -> None:
        """Reinsert one index at the head (redelivery ordering)."""
        if self._head == 0:
            self._make_room(0)
            if self._head == 0:  # pragma: no cover - slack guarantees room
                raise RuntimeError("IndexFifo front slack exhausted")
        self._head -= 1
        self._buf[self._head] = value

    def pop(self) -> int:
        """Dequeue the oldest index."""
        if self._head == self._tail:
            raise IndexError("pop from empty IndexFifo")
        value = int(self._buf[self._head])
        self._head += 1
        return value

    def peek_prefix(self, n: int) -> np.ndarray:
        """Read-only view of the ``n`` oldest indices (no dequeue)."""
        if n > len(self):
            raise IndexError(f"prefix of {n} from IndexFifo of {len(self)}")
        return self._buf[self._head:self._head + n]

    def consume(self, n: int) -> None:
        """Batch-dequeue the ``n`` oldest indices (pointer advance)."""
        if n > len(self):
            raise IndexError(f"consume of {n} from IndexFifo of {len(self)}")
        self._head += n

    def to_list(self) -> List[int]:
        """Queue contents oldest-first (snapshot/debugging aid)."""
        return self._buf[self._head:self._tail].tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexFifo(len={len(self)})"
