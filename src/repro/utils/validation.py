"""Small argument-validation helpers used across the library.

These raise early with actionable messages instead of letting bad
configuration propagate into the simulator or the learning code.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
    "isclose_zero",
    "require",
]

#: Default tolerance for :func:`isclose_zero`; generous enough to absorb
#: accumulated float error in window statistics, far below any physical
#: quantity the simulator tracks (seconds, requests, containers).
ZERO_EPS = 1e-12


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Require ``value`` in the interval [low, high] (bounds per ``inclusive``)."""
    low_ok = value >= low if inclusive[0] else value > low
    high_ok = value <= high if inclusive[1] else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(
            f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``value`` in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def isclose_zero(value: float, eps: float = ZERO_EPS) -> bool:
    """True when ``abs(value) <= eps``.

    Use this instead of ``value == 0.0``: exact float equality silently
    misbehaves once a quantity has been through any arithmetic, and the
    static-analysis pass (rule S101) rejects it in library code.
    """
    return abs(value) <= eps


def require(condition: bool, message: str) -> None:
    """Raise :class:`RuntimeError` when an internal invariant fails.

    Unlike ``assert``, this check survives ``python -O`` — use it for
    invariants and budget/constraint checks in library code (the
    static-analysis pass, rule S103, rejects bare asserts there).
    """
    if not condition:
        raise RuntimeError(f"internal invariant violated: {message}")


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Require ``isinstance(value, expected)``; return value for chaining."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp}, got {type(value).__name__}")
    return value
