"""Small argument-validation helpers used across the library.

These raise early with actionable messages instead of letting bad
configuration propagate into the simulator or the learning code.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Require ``value`` in the interval [low, high] (bounds per ``inclusive``)."""
    low_ok = value >= low if inclusive[0] else value > low
    high_ok = value <= high if inclusive[1] else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(
            f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``value`` in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Require ``isinstance(value, expected)``; return value for chaining."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp}, got {type(value).__name__}")
    return value
