"""Serial/batch pair registry: the contract behind ``predict_batch`` et al.

The vectorised hot paths (PR 5's BatchedModelEnv, the batched DDPG act
path) rely on a family of *serial/batch pairs*: a scalar function
(``predict``, ``act``, ``reward_eq1``, ``sample``) and a batched twin
(``predict_batch``, ...) that must agree bit-for-bit row by row.  That
equivalence is easy to break silently — a dtype promotion in one twin, an
in-place tweak of a shared input, a signature drift that reorders
arguments.  This module makes the pairing *explicit*::

    @batched_pair("predict")
    def predict_batch(self, states, actions):
        ...

Declaring the pair buys three layers of enforcement:

- **Static** — reprolint's B1 family reads the decorator from source
  (never importing runtime code) and verifies the serial twin exists
  (B101), the signatures align modulo the leading batch axis (B102), and
  at least one test references the batched side (B103).
- **Runtime** — while the sanitizer is active (``REPRO_SANITIZE=1``),
  every call through a registered batch function is routed through a
  guard that hashes array arguments (mutation across the boundary raises)
  and checks dtype stability (silent float32/float64 drift raises).
- **Registry** — :func:`registered_pairs` lets tests enumerate every
  declared pair and drive serial-vs-batch equivalence sweeps generically.

The guard hook is deliberately indirect: this module never imports
``repro.analysis`` (``repro.utils`` sits at the bottom of the layer DAG);
instead the sanitizer installs a callable via :func:`set_runtime_guard`
on activation and clears it on deactivation.  With no guard installed the
wrapper is a single global read — negligible against a network forward.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.utils.validation import require

__all__ = [
    "BatchPair",
    "batched_pair",
    "registered_pairs",
    "set_runtime_guard",
    "clear_runtime_guard",
]


@dataclass(frozen=True)
class BatchPair:
    """One declared serial/batch pairing (identity only, no callables)."""

    #: Defining module of the batched function (``repro.core.reward``).
    module: str
    #: Qualified name of the serial twin within the module
    #: (``EnvironmentModel.predict``; plain name for free functions).
    serial_qualname: str
    #: Qualified name of the decorated batch function.
    batch_qualname: str
    serial_name: str
    batch_name: str
    #: Declared shape contract for the batch twin's positional
    #: parameters after ``self`` and its return, in the grammar parsed
    #: by :func:`repro.analysis.shapes.parse_contract` — e.g.
    #: ``"(K, state_dim), (K, action_dim) -> (K, state_dim)"``.  ``K``
    #: is the leading batch axis; a bare identifier binds a scalar int
    #: symbol; ``_`` leaves a slot unchecked.  None means undeclared
    #: (reprolint's V201 fires on registered twins without one).
    shapes: Optional[str] = None

    @property
    def key(self) -> str:
        """Registry key: the fully qualified serial twin."""
        return f"{self.module}.{self.serial_qualname}"


#: Every pair declared via :func:`batched_pair`, keyed by
#: :attr:`BatchPair.key`.  Populated at import time of the decorated
#: modules; re-imports re-register the same key idempotently.
_REGISTRY: Dict[str, BatchPair] = {}

#: Sanitizer hook: ``guard(pair, fn, args, kwargs) -> result``.  None
#: (the default) means calls pass straight through.
_RUNTIME_GUARD: Optional[Callable[..., Any]] = None


def batched_pair(
    serial_name: str, *, shapes: Optional[str] = None
) -> Callable:
    """Declare the decorated function as the batch twin of ``serial_name``.

    ``serial_name`` is the *simple* name of the serial function in the
    same scope (same class for methods, same module for free functions);
    reprolint resolves and checks it statically, so a typo here fails CI
    rather than silently registering an unpaired function.

    ``shapes`` declares the batch twin's array-shape contract (see
    :class:`BatchPair.shapes`).  It is read both statically — reprolint's
    V2 family parses it from source and proves the leading batch axis
    flows entry-to-return — and at runtime, where the sanitizer binds
    its symbols against observed argument shapes on every call.
    """
    require(
        isinstance(serial_name, str) and serial_name.isidentifier(),
        f"serial_name must be a Python identifier, got {serial_name!r}",
    )
    require(
        shapes is None or (isinstance(shapes, str) and shapes.strip()),
        "shapes must be a non-empty contract string when given",
    )

    def decorate(fn: Callable) -> Callable:
        qualname = fn.__qualname__
        scope, _, _ = qualname.rpartition(".")
        serial_qualname = f"{scope}.{serial_name}" if scope else serial_name
        pair = BatchPair(
            module=fn.__module__,
            serial_qualname=serial_qualname,
            batch_qualname=qualname,
            serial_name=serial_name,
            batch_name=fn.__name__,
            shapes=shapes,
        )
        _REGISTRY[pair.key] = pair

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            guard = _RUNTIME_GUARD
            if guard is None:
                return fn(*args, **kwargs)
            return guard(pair, fn, args, kwargs)

        wrapper.__repro_batch_pair__ = pair
        return wrapper

    return decorate


def registered_pairs() -> Dict[str, BatchPair]:
    """Snapshot of every declared pair, keyed by serial qualname."""
    return dict(_REGISTRY)


def set_runtime_guard(guard: Callable[..., Any]) -> None:
    """Install the sanitizer's call-through guard (replaces any prior)."""
    global _RUNTIME_GUARD
    require(callable(guard), "runtime guard must be callable")
    _RUNTIME_GUARD = guard


def clear_runtime_guard() -> None:
    """Remove the guard; registered functions call through directly."""
    global _RUNTIME_GUARD
    _RUNTIME_GUARD = None
