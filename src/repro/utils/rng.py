"""Seeded random-number streams.

Every stochastic component of the reproduction (arrival processes, service
times, network initialisation, exploration noise, ...) draws from its own
named stream so that experiments are reproducible and components can be
re-seeded independently.  Streams are derived from a root seed with
``numpy.random.SeedSequence`` spawning, which guarantees statistical
independence between streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = ["RngStream", "spawn_rngs"]


class RngStream:
    """A named, independently seeded random generator.

    Thin wrapper around :class:`numpy.random.Generator` that remembers its
    name and seed sequence so it can be re-created (``fork``) or reported in
    experiment logs.
    """

    def __init__(self, name: str, seed_sequence: np.random.SeedSequence):
        self.name = name
        self._seed_sequence = seed_sequence
        self.generator = np.random.default_rng(seed_sequence)

    def fork(self, label: str) -> "RngStream":
        """Derive a child stream that is independent of this one."""
        (child,) = self._seed_sequence.spawn(1)
        return RngStream(f"{self.name}/{label}", child)

    # Convenience passthroughs ------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self.generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def exponential(self, scale: float = 1.0, size=None):
        return self.generator.exponential(scale, size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        return self.generator.lognormal(mean, sigma, size)

    def poisson(self, lam: float = 1.0, size=None):
        return self.generator.poisson(lam, size)

    def integers(self, low: int, high: int, size=None):
        return self.generator.integers(low, high, size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self.generator.shuffle(x)

    def permutation(self, x):
        return self.generator.permutation(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r})"


def spawn_rngs(seed: int, names: Iterable[str]) -> Dict[str, RngStream]:
    """Create one independent :class:`RngStream` per name from a root seed."""
    names_list: List[str] = list(names)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names_list))
    return {
        name: RngStream(name, child) for name, child in zip(names_list, children)
    }
