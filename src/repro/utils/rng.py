"""Seeded random-number streams.

Every stochastic component of the reproduction (arrival processes, service
times, network initialisation, exploration noise, ...) draws from its own
named stream so that experiments are reproducible and components can be
re-seeded independently.  Streams are derived from a root seed with
``numpy.random.SeedSequence`` spawning, which guarantees statistical
independence between streams.

Reproducibility contract
------------------------
All randomness in ``repro`` must flow through :class:`RngStream`; ambient
sources (the :mod:`random` module, global numpy state, wall-clock seeds)
are forbidden and rejected statically by ``python -m repro.analysis``
(rule family D1).  Components accept an ``rng`` argument; when a caller
omits it, the component falls back to :func:`fallback_stream`, which keeps
old call sites working but emits a :class:`ReproducibilityWarning` so the
fallback is never silent (rule family D2).
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List

import numpy as np

__all__ = [
    "RngStream",
    "spawn_rngs",
    "fallback_stream",
    "derive_stream_seed",
    "ReproducibilityWarning",
]

#: Seed used by :func:`fallback_stream` when a caller does not provide an
#: explicit stream.  Kept as a named constant so the fallback is auditable.
FALLBACK_SEED = 0


class ReproducibilityWarning(UserWarning):
    """A component silently used a default seed instead of an explicit one.

    Experiments that care about their results should construct every
    stochastic component with a stream forked from the experiment seed;
    this warning marks the places that did not.
    """


class RngStream:
    """A named, independently seeded random generator.

    Thin wrapper around :class:`numpy.random.Generator` that remembers its
    name and seed sequence so it can be re-created (``fork``) or reported in
    experiment logs.
    """

    def __init__(self, name: str, seed_sequence: np.random.SeedSequence):
        self.name = name
        self._seed_sequence = seed_sequence
        self.generator = np.random.default_rng(seed_sequence)

    def fork(self, label: str) -> "RngStream":
        """Derive a child stream that is independent of this one.

        Forking is deterministic given the parent's seed and the *order* of
        ``fork`` calls: the same parent forked through the same sequence of
        labels reproduces the same children, and every fork — including a
        re-used label — yields a fresh, statistically independent stream.
        The label is recorded in the child's hierarchical name so streams
        remain auditable in traces.
        """
        (child,) = self._seed_sequence.spawn(1)
        return RngStream(f"{self.name}/{label}", child)

    # Convenience passthroughs ------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self.generator.uniform(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def exponential(self, scale: float = 1.0, size=None):
        return self.generator.exponential(scale, size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        return self.generator.lognormal(mean, sigma, size)

    def poisson(self, lam: float = 1.0, size=None):
        return self.generator.poisson(lam, size)

    def integers(self, low: int, high: int, size=None):
        return self.generator.integers(low, high, size)

    def choice(self, a, size=None, replace: bool = True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self.generator.shuffle(x)

    def permutation(self, x):
        return self.generator.permutation(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(name={self.name!r})"


def spawn_rngs(seed: int, names: Iterable[str]) -> Dict[str, RngStream]:
    """Create one independent :class:`RngStream` per name from a root seed."""
    names_list: List[str] = list(names)
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names_list))
    return {
        name: RngStream(name, child) for name, child in zip(names_list, children)
    }


def derive_stream_seed(root_seed: int, label: str) -> int:
    """Deterministic seed keyed by (root seed, label) — and nothing else.

    Uses a ``SeedSequence`` over the root seed plus the label's bytes: no
    ``hash()`` (randomised per process) and no dependence on derivation
    *order*, so any scheduling of labelled work items over workers —
    serial, process pools, interleaved — derives the same seed for the
    same item.  This is the primitive behind the parallel experiment
    runner's per-cell seeds and the distributed collector's per-episode
    streams.
    """
    if root_seed < 0:
        raise ValueError(f"root_seed must be >= 0, got {root_seed}")
    entropy = (root_seed, *label.encode("utf-8"))
    return int(np.random.SeedSequence(entropy).generate_state(1, dtype=np.uint32)[0])


def fallback_stream(name: str) -> RngStream:
    """Default stream for components whose caller passed ``rng=None``.

    Returns a stream seeded from :data:`FALLBACK_SEED` so legacy call sites
    keep working, but emits a :class:`ReproducibilityWarning`: results that
    matter should thread an explicit stream forked from the experiment seed
    instead of relying on this fixed default.
    """
    warnings.warn(
        f"component {name!r} was constructed without an explicit RngStream "
        f"and falls back to the fixed seed {FALLBACK_SEED}; pass "
        "rng=<stream>.fork(...) derived from the experiment seed for "
        "reproducible, independently seeded results",
        ReproducibilityWarning,
        stacklevel=3,
    )
    return RngStream(name, np.random.SeedSequence(FALLBACK_SEED))
