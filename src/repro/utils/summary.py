"""Running statistics helpers for metric collection."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

__all__ = ["RunningStats", "ewma"]


class RunningStats:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Used by the simulator's metric collectors where storing every sample
    (e.g. per-task delays across a long run) would be wasteful.
    """

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def push(self, value: float) -> None:
        """Incorporate one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.push(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two summaries (parallel Welford merge) into a new one."""
        merged = RunningStats()
        if self.count == 0:
            merged.count = other.count
            merged._mean = other._mean
            merged._m2 = other._m2
            merged._min, merged._max = other._min, other._max
            return merged
        if other.count == 0:
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged._min, merged._max = self._min, self._max
            return merged
        total = self.count + other.count
        delta = other._mean - self._mean
        merged.count = total
        merged._mean = self._mean + delta * other.count / total
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / total
        )
        merged._min = min(self._min, other._min)  # type: ignore[arg-type]
        merged._max = max(self._max, other._max)  # type: ignore[arg-type]
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g})"
        )


def ewma(values: Iterable[float], alpha: float) -> List[float]:
    """Exponentially weighted moving average of a series.

    ``alpha`` is the smoothing weight of the newest sample; alpha=1 returns
    the series unchanged.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
    out: List[float] = []
    current: Optional[float] = None
    for value in values:
        current = value if current is None else alpha * value + (1 - alpha) * current
        out.append(current)
    return out
