"""Shared utilities: seeded RNG streams, validation, running statistics."""

from repro.utils.rng import RngStream, spawn_rngs
from repro.utils.summary import RunningStats, ewma
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngStream",
    "spawn_rngs",
    "RunningStats",
    "ewma",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
