"""Shared utilities: seeded RNG streams, validation, running statistics,
and the serial/batch pair registry."""

from repro.utils.batchpairs import (
    BatchPair,
    batched_pair,
    registered_pairs,
)
from repro.utils.rng import (
    ReproducibilityWarning,
    RngStream,
    fallback_stream,
    spawn_rngs,
)
from repro.utils.summary import RunningStats, ewma
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    isclose_zero,
    require,
)

__all__ = [
    "BatchPair",
    "batched_pair",
    "registered_pairs",
    "RngStream",
    "ReproducibilityWarning",
    "spawn_rngs",
    "fallback_stream",
    "RunningStats",
    "ewma",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "isclose_zero",
    "require",
]
