"""reprolint configuration, read from ``[tool.reprolint]`` in pyproject.toml.

Recognised keys::

    [tool.reprolint]
    paths = ["src/repro"]          # what to analyse (files or directories)
    disable = ["A103"]             # rule ids to turn off globally
    baseline = "reprolint-baseline.json"   # optional ratchet file
    exclude = ["src/repro/_vendored"]      # path prefixes to skip
    cache = ".reprolint-cache.json"        # project-index cache (false = off)
    sim_packages = ["repro.sim"]           # layers owning event-loop state (E1)
    step_entrypoints = ["run_window", "step"]  # extra E1 roots
    hotpath_roots = ["step", "predict_batch"]  # N102 reachability roots

    [tool.reprolint.layers]        # import DAG (L1): package -> allowed deps
    "repro.sim" = ["repro.telemetry", "repro.utils", "repro.workflows"]

TOML parsing uses the stdlib :mod:`tomllib` (Python >= 3.11).  On older
interpreters — where tomllib does not exist and the project vendors no
TOML parser — configuration silently falls back to the defaults, keeping
the analyser importable everywhere the library runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    tomllib = None

__all__ = [
    "LintConfig",
    "load_config",
    "find_pyproject",
    "DEFAULT_LAYERS",
    "DEFAULT_STEP_ENTRYPOINTS",
    "DEFAULT_HOTPATH_ROOTS",
]

_DEFAULT_PATHS = ["src/repro"]
_DEFAULT_CACHE = ".reprolint-cache.json"

#: The import DAG of docs/ARCHITECTURE.md, as package -> packages it may
#: import at module scope.  Packages not listed (``repro.cli`` and the
#: top-level modules) are unconstrained; lazy function-level imports are
#: always exempt — they are the sanctioned escape hatch for optional
#: heavy edges (e.g. ``telemetry.report`` formatting via ``repro.eval``).
DEFAULT_LAYERS: Dict[str, List[str]] = {
    "repro.utils": [],
    "repro.nn": ["repro.utils"],
    "repro.telemetry": ["repro.utils"],
    "repro.workflows": ["repro.utils"],
    "repro.sim": ["repro.telemetry", "repro.utils", "repro.workflows"],
    "repro.workload": ["repro.sim", "repro.utils"],
    "repro.rl": ["repro.nn", "repro.telemetry", "repro.utils"],
    "repro.core": [
        "repro.nn", "repro.rl", "repro.sim", "repro.telemetry", "repro.utils",
    ],
    "repro.baselines": [
        "repro.core", "repro.rl", "repro.sim", "repro.utils",
        "repro.workflows",
    ],
    "repro.eval": [
        "repro.baselines", "repro.core", "repro.rl", "repro.sim",
        "repro.telemetry", "repro.utils", "repro.workflows", "repro.workload",
    ],
    # reprolint reads runtime packages as ASTs, never imports them.
    "repro.analysis": [],
}

#: Method names that anchor the E1 "step path": state mutation is legal
#: in functions reachable from these, from ``__init__``/dunders, or from
#: event-loop callbacks.
DEFAULT_STEP_ENTRYPOINTS: List[str] = [
    "run_window",
    "step",
    "step_simplex",
    "reset",
    "submit",
    "inject_burst",
    "attach",
    # Lifecycle controls drivers call between windows.
    "start",
    "stop",
]

#: Roots of the numeric hot path (N102): scalar accumulation loops in
#: functions reachable from these names are flagged as vectorisation
#: hazards; cold utility code is left alone.
DEFAULT_HOTPATH_ROOTS: List[str] = [
    "step",
    "predict_batch",
    "train_policy",
]


@dataclass
class LintConfig:
    """Resolved configuration for one analysis run."""

    #: Project root every relative path below is resolved against.
    root: Path
    paths: List[str] = field(default_factory=lambda: list(_DEFAULT_PATHS))
    disable: List[str] = field(default_factory=list)
    baseline: Optional[str] = None
    exclude: List[str] = field(default_factory=list)
    #: Import DAG enforced by L1: package -> packages it may import.
    layers: Dict[str, List[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )
    #: Packages whose objects own event-loop state (E1).
    sim_packages: List[str] = field(default_factory=lambda: ["repro.sim"])
    #: Extra E1 reachability roots besides ``__init__``/dunders/callbacks.
    step_entrypoints: List[str] = field(
        default_factory=lambda: list(DEFAULT_STEP_ENTRYPOINTS)
    )
    #: Roots of the N102 hot-path reachability closure.
    hotpath_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_HOTPATH_ROOTS)
    )
    #: Project-index cache file relative to root; None disables caching.
    cache: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable string over every analysis-affecting setting.

        Folded into :func:`repro.analysis.index.project_digest` so a
        ``[tool.reprolint]`` edit invalidates the index cache even when
        no source file changed.  ``root`` and ``cache`` are deliberately
        left out: neither changes what the analysis computes.
        """
        payload = {
            "paths": list(self.paths),
            "disable": sorted(self.disable),
            "baseline": self.baseline,
            "exclude": list(self.exclude),
            "layers": {k: sorted(v) for k, v in sorted(self.layers.items())},
            "sim_packages": list(self.sim_packages),
            "step_entrypoints": list(self.step_entrypoints),
            "hotpath_roots": list(self.hotpath_roots),
        }
        return json.dumps(payload, sort_keys=True)

    def resolved_paths(self) -> List[Path]:
        """Analysis targets as absolute paths."""
        return [self.root / p for p in self.paths]

    def baseline_path(self) -> Optional[Path]:
        """Absolute baseline path, or None when no baseline is configured."""
        if self.baseline is None:
            return None
        return self.root / self.baseline

    def cache_path(self) -> Optional[Path]:
        """Absolute index-cache path, or None when caching is off."""
        if self.cache is None:
            return None
        return self.root / self.cache


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest pyproject.toml."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from the nearest pyproject.toml.

    Without a pyproject.toml (or on interpreters without :mod:`tomllib`)
    the defaults apply, rooted at ``start``.
    """
    start = (start or Path.cwd()).resolve()
    pyproject = find_pyproject(start)
    if pyproject is None or tomllib is None:
        return LintConfig(root=start)
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("reprolint", {})
    config = LintConfig(root=pyproject.parent, cache=_DEFAULT_CACHE)
    if "paths" in section:
        config.paths = [str(p) for p in section["paths"]]
    if "disable" in section:
        config.disable = [str(r) for r in section["disable"]]
    if "baseline" in section:
        config.baseline = str(section["baseline"])
    if "exclude" in section:
        config.exclude = [str(p) for p in section["exclude"]]
    if "layers" in section:
        config.layers = {
            str(pkg): [str(d) for d in deps]
            for pkg, deps in section["layers"].items()
        }
    if "sim_packages" in section:
        config.sim_packages = [str(p) for p in section["sim_packages"]]
    if "step_entrypoints" in section:
        config.step_entrypoints = [str(n) for n in section["step_entrypoints"]]
    if "hotpath_roots" in section:
        config.hotpath_roots = [str(n) for n in section["hotpath_roots"]]
    if "cache" in section:
        # ``cache = false`` disables the index cache; a string names it.
        config.cache = (
            str(section["cache"]) if section["cache"] else None
        )
    return config
