"""reprolint configuration, read from ``[tool.reprolint]`` in pyproject.toml.

Recognised keys::

    [tool.reprolint]
    paths = ["src/repro"]          # what to analyse (files or directories)
    disable = ["A103"]             # rule ids to turn off globally
    baseline = "reprolint-baseline.json"   # optional ratchet file
    exclude = ["src/repro/_vendored"]      # path prefixes to skip

TOML parsing uses the stdlib :mod:`tomllib` (Python >= 3.11).  On older
interpreters — where tomllib does not exist and the project vendors no
TOML parser — configuration silently falls back to the defaults, keeping
the analyser importable everywhere the library runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    tomllib = None

__all__ = ["LintConfig", "load_config", "find_pyproject"]

_DEFAULT_PATHS = ["src/repro"]


@dataclass
class LintConfig:
    """Resolved configuration for one analysis run."""

    #: Project root every relative path below is resolved against.
    root: Path
    paths: List[str] = field(default_factory=lambda: list(_DEFAULT_PATHS))
    disable: List[str] = field(default_factory=list)
    baseline: Optional[str] = None
    exclude: List[str] = field(default_factory=list)

    def resolved_paths(self) -> List[Path]:
        """Analysis targets as absolute paths."""
        return [self.root / p for p in self.paths]

    def baseline_path(self) -> Optional[Path]:
        """Absolute baseline path, or None when no baseline is configured."""
        if self.baseline is None:
            return None
        return self.root / self.baseline


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest pyproject.toml."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from the nearest pyproject.toml.

    Without a pyproject.toml (or on interpreters without :mod:`tomllib`)
    the defaults apply, rooted at ``start``.
    """
    start = (start or Path.cwd()).resolve()
    pyproject = find_pyproject(start)
    if pyproject is None or tomllib is None:
        return LintConfig(root=start)
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("reprolint", {})
    config = LintConfig(root=pyproject.parent)
    if "paths" in section:
        config.paths = [str(p) for p in section["paths"]]
    if "disable" in section:
        config.disable = [str(r) for r in section["disable"]]
    if "baseline" in section:
        config.baseline = str(section["baseline"])
    if "exclude" in section:
        config.exclude = [str(p) for p in section["exclude"]]
    return config
