"""reprolint: static determinism & simulation-invariant analysis.

MIRAS's claims rest on reproducible rollouts: the environment model is
trained on simulated transitions, so ambient nondeterminism (global RNG,
wall-clock reads, silently defaulted seeds) corrupts model-accuracy and
comparison results without failing a single test.  This package walks the
``src/repro`` tree with :mod:`ast` and rejects that defect class
statically, before it costs a training run.

Per-file rule families (see ``docs/LINTING.md`` for the full reference):

- **D1** — ambient nondeterminism (D101 stdlib/global-numpy randomness,
  D102 wall-clock reads),
- **D2** — silent seed fallbacks (D201 literal ``SeedSequence`` seeds),
- **S1** — simulation-invariant hygiene (S101 float equality, S102
  mutable defaults, S103 assert-as-validation),
- **A1** — public-API consistency in package ``__init__`` files (A101
  broken exports, A102 missing docstrings, A103 ``__all__`` mismatches).

Cross-module families, consuming the cached whole-tree
:class:`~repro.analysis.index.ProjectIndex`:

- **R1** — RNG fork-label provenance (R101 duplicate labels on one
  parent stream, R102 constant labels in loops, R103 forks in default
  arguments),
- **T1** — telemetry conformance of every ``tracer.emit`` site against
  the ``RECORD_SCHEMAS`` registry as written (T101 unknown kind, T102
  payload drift, T103 statically unresolvable sites),
- **E1** — event discipline: sim-owned state mutated only from the
  event-loop/step path (E101) and never from other layers (E102),
- **L1** — the import DAG of docs/ARCHITECTURE.md at module scope
  (L101).

:mod:`repro.analysis.sanitizer` is the runtime twin of R1/T1: activated
via ``REPRO_SANITIZE=1`` (or :func:`~repro.analysis.sanitizer.sanitized`),
it asserts fork-label uniqueness and record-schema validity on the
running program.

Run the static pass with ``python -m repro.analysis`` or ``repro lint``.
Findings can be suppressed inline with ``# reprolint: disable=RULE`` or
ratcheted via a baseline file (stale entries fail the run);
configuration lives in ``[tool.reprolint]`` in pyproject.toml.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, load_config
from repro.analysis.crossrules import ProjectChecker, all_project_checkers
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import ProjectIndex, build_index
from repro.analysis.rules import Checker, all_checkers, all_rule_ids

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Checker",
    "Finding",
    "LintConfig",
    "ProjectChecker",
    "ProjectIndex",
    "Severity",
    "all_checkers",
    "all_project_checkers",
    "all_rule_ids",
    "build_index",
    "load_config",
    "run_analysis",
]
