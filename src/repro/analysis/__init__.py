"""reprolint: static determinism & simulation-invariant analysis.

MIRAS's claims rest on reproducible rollouts: the environment model is
trained on simulated transitions, so ambient nondeterminism (global RNG,
wall-clock reads, silently defaulted seeds) corrupts model-accuracy and
comparison results without failing a single test.  This package walks the
``src/repro`` tree with :mod:`ast` and rejects that defect class
statically, before it costs a training run.

Rule families (see ``docs/LINTING.md`` for the full reference):

- **D1** — ambient nondeterminism (D101 stdlib/global-numpy randomness,
  D102 wall-clock reads),
- **D2** — silent seed fallbacks (D201 literal ``SeedSequence`` seeds),
- **S1** — simulation-invariant hygiene (S101 float equality, S102
  mutable defaults, S103 assert-as-validation),
- **A1** — public-API consistency in package ``__init__`` files (A101
  broken exports, A102 missing docstrings, A103 ``__all__`` mismatches).

Run it with ``python -m repro.analysis`` or ``repro lint``.  Findings can
be suppressed inline with ``# reprolint: disable=RULE`` or ratcheted via a
baseline file; configuration lives in ``[tool.reprolint]`` in
pyproject.toml.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Checker, all_checkers, all_rule_ids

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Checker",
    "Finding",
    "LintConfig",
    "Severity",
    "all_checkers",
    "all_rule_ids",
    "load_config",
    "run_analysis",
]
