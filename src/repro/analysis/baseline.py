"""Baseline (ratchet) support.

A baseline waives a known set of pre-existing findings so the linter can
be adopted on a dirty tree and violations ratcheted down over time: new
findings always fail, old ones are tolerated until fixed, and
``--update-baseline`` shrinks the file as the tree gets cleaner.

Entries are keyed by ``(path, rule)`` with a count rather than line
numbers, so unrelated edits that shift code around do not invalidate the
baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """Waives up to N findings per (path, rule) pair."""

    def __init__(self, allowances: Dict[Tuple[str, str], int]):
        self.allowances = dict(allowances)

    @classmethod
    def empty(cls) -> "Baseline":
        """A baseline that waives nothing."""
        return cls({})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls.empty()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{data.get('version')!r}"
            )
        allowances = {
            (entry["path"], entry["rule"]): int(entry["count"])
            for entry in data.get("entries", [])
        }
        return cls(allowances)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        """Baseline that exactly waives the given findings."""
        counts = Counter((f.path, f.rule) for f in findings)
        return cls(dict(counts))

    def save(self, path: Path) -> None:
        """Write the baseline; sorted for stable diffs."""
        entries = [
            {"path": p, "rule": r, "count": c}
            for (p, r), c in sorted(self.allowances.items())
            if c > 0
        ]
        path.write_text(
            json.dumps({"version": _VERSION, "entries": entries}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (reported, waived).

        Findings are waived in (path, line) order until the per-(path,
        rule) allowance is exhausted; the rest are reported.
        """
        remaining = dict(self.allowances)
        reported: List[Finding] = []
        waived: List[Finding] = []
        for finding in sorted(findings):
            key = (finding.path, finding.rule)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                waived.append(finding)
            else:
                reported.append(finding)
        return reported, waived

    def stale_entries(
        self, findings: List[Finding]
    ) -> List[Tuple[str, str, int]]:
        """Allowances not fully consumed by ``findings``.

        A stale entry means a baselined violation was fixed but the
        ratchet file still waives it — the waiver must be dropped
        (``--update-baseline``) so it cannot mask a future regression.
        Returns ``(path, rule, unused_count)`` triples, sorted.
        """
        seen = Counter((f.path, f.rule) for f in findings)
        stale: List[Tuple[str, str, int]] = []
        for (path, rule), allowed in sorted(self.allowances.items()):
            unused = allowed - seen.get((path, rule), 0)
            if unused > 0:
                stale.append((path, rule, unused))
        return stale

    def __len__(self) -> int:
        return sum(self.allowances.values())
