"""Project-level rule families consuming the :mod:`repro.analysis.index`.

Where :mod:`repro.analysis.rules` checks one module at a time, the four
families here need the whole-project index:

=====  ======================================================================
R1     RNG provenance: duplicate fork labels on the same parent stream
       (R101), constant labels forked inside loops (R102), and RNG
       objects captured in default arguments (R103).  Each one makes two
       "independent" streams share a name or a generator and silently
       correlates experiments.
T1     Telemetry conformance: every ``tracer.emit(...)`` call site must
       use a kind registered in ``RECORD_SCHEMAS`` (T101) with exactly
       the registered payload fields (T102); computed kinds are flagged
       for review (T103).  Keeps instrumentation and
       ``repro.telemetry.records`` from drifting apart.
E1     Event discipline — the race detector for the discrete-event
       simulator: sim-owned state may only be mutated by functions
       reachable from event callbacks, the step path, or construction
       (E101), and never from outside the sim layer at all (E102).
L1     Layering: module-scope imports must follow the DAG documented in
       docs/ARCHITECTURE.md (L101).  Lazy function-level imports are
       exempt by design.
N1     Numeric discipline: mixed float32/float64 provenance within a
       function or across a call edge (N101), bare Python-float
       accumulation loops reachable from the hot-path roots (N102), and
       in-place mutation of array parameters that escape the defining
       module (N103).
P1     Process safety: workers handed to pools/executors must be
       module-level callables (P101) that read no module-level mutable
       globals (P102) and no ambient RNG state — seeds must be derived
       per task (P103); result combination must be input-order
       deterministic (P104).
B1     Batch-pair contracts: every ``@batched_pair`` declaration must
       name an existing serial twin (B101) whose signature aligns modulo
       the leading batch axis (B102), and — when tests are under
       analysis — at least one test must reference the batched side
       (B103).
V1/V2  Shape discipline and batch-axis dataflow proofs, built on the
W1     abstract interpreter in :mod:`repro.analysis.shapes`; the
       checkers live in :mod:`repro.analysis.shaperules` and register
       through :func:`all_project_checkers` like every other family.
=====  ======================================================================

All checks work on plain index data, so they run identically from a
fresh extraction or the on-disk index cache.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import (
    SIM_OWNED_SEGMENTS,
    BatchPairSite,
    EmitSite,
    ForkSite,
    FunctionInfo,
    ProjectIndex,
)

__all__ = [
    "ProjectChecker",
    "RngProvenanceChecker",
    "TelemetryConformanceChecker",
    "EventDisciplineChecker",
    "LayeringChecker",
    "NumericDisciplineChecker",
    "ProcessSafetyChecker",
    "BatchPairChecker",
    "all_project_checkers",
    "project_rule_rows",
]


class ProjectChecker:
    """One cross-module rule family."""

    family: str = ""
    #: (rule id, description) rows, for --list-rules and config validation.
    rules: List[Tuple[str, str]] = []

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        rule: str,
        path: str,
        line: int,
        column: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            column=column,
            rule=rule,
            severity=severity,
            message=message,
            family=self.family,
        )


def _rng_like(receiver: Optional[str]) -> bool:
    """Heuristic: does the receiver look like an RngStream?

    ``fork`` is a common method name; gating on an rng-ish receiver
    (``rng``, ``self._rngs["collect"]``, ``system.workload_rng``) keeps
    the family from firing on unrelated fork() APIs.
    """
    if receiver is None:
        return False
    last = receiver.split(".")[-1]
    return "rng" in last.lower()


class RngProvenanceChecker(ProjectChecker):
    """R1: fork-label provenance across the whole project."""

    family = "R1"
    rules = [
        (
            "R101",
            "the same constant fork label is used at several call sites of "
            "one parent stream; path-qualify the labels so stream names "
            "stay unique and auditable",
        ),
        (
            "R102",
            "constant fork label inside a loop: every iteration creates a "
            "stream with the same name; derive the label from the loop "
            "variable",
        ),
        (
            "R103",
            "RNG captured in a default argument is created once at def "
            "time and shared across calls; default to None and fork inside "
            "the function",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        sites = [s for s in index.fork_sites if _rng_like(s.receiver)]

        # R101: duplicate (receiver, label) across distinct call sites.
        groups: Dict[Tuple[str, str], List[ForkSite]] = defaultdict(list)
        for site in sites:
            if site.label is not None:
                groups[(site.receiver, site.label)].append(site)
        for (receiver, label), members in sorted(groups.items()):
            locations = {(m.path, m.line) for m in members}
            if len(locations) < 2:
                continue
            for site in members:
                others = sorted(
                    f"{m.path}:{m.line}"
                    for m in members
                    if (m.path, m.line) != (site.path, site.line)
                )
                yield self.finding(
                    "R101", site.path, site.line, site.column,
                    f"fork label {label!r} on parent `{receiver}` is also "
                    f"used at {', '.join(others)}; two streams share the "
                    f"name `{receiver}/{label}` — qualify the label with "
                    "its component path",
                )

        for site in sites:
            # R102: constant label forked in a loop.
            if site.label is not None and site.in_loop:
                yield self.finding(
                    "R102", site.path, site.line, site.column,
                    f"constant fork label {site.label!r} inside a loop "
                    "mints identically named streams every iteration; "
                    "derive the label from the loop variable "
                    "(e.g. f\"...{i}\")",
                )
            # R103: fork evaluated in a default argument.
            if site.in_default:
                yield self.finding(
                    "R103", site.path, site.line, site.column,
                    "RNG forked in a default argument is evaluated once at "
                    "def time and shared by every call; default to None "
                    "and fork inside the function body",
                )


class TelemetryConformanceChecker(ProjectChecker):
    """T1: tracer.emit call sites vs the RECORD_SCHEMAS registry."""

    family = "T1"
    rules = [
        (
            "T101",
            "tracer.emit with a record kind that is not registered in "
            "RECORD_SCHEMAS",
        ),
        (
            "T102",
            "tracer.emit payload fields do not match the registered schema "
            "for the kind",
        ),
        (
            "T103",
            "tracer.emit with a computed kind or payload cannot be checked "
            "statically; prefer constant kinds and keyword fields",
        ),
    ]

    @staticmethod
    def _tracer_like(site: EmitSite) -> bool:
        if site.receiver is None:
            return False
        return "tracer" in site.receiver.split(".")[-1].lower()

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        if not index.schemas:
            return  # no registry under analysis: nothing to conform to
        for site in index.emit_sites:
            if not self._tracer_like(site):
                continue
            if site.kind is None:
                yield self.finding(
                    "T103", site.path, site.line, site.column,
                    "record kind is computed at runtime; the schema "
                    "registry cannot vouch for it — use a constant kind "
                    "from repro.telemetry.records.RECORD_SCHEMAS",
                    severity=Severity.WARNING,
                )
                continue
            if site.kind not in index.schemas:
                yield self.finding(
                    "T101", site.path, site.line, site.column,
                    f"record kind {site.kind!r} is not registered in "
                    f"RECORD_SCHEMAS ({index.schema_module}); register the "
                    "schema before emitting it",
                )
                continue
            expected = index.schemas[site.kind]
            if expected is None:
                continue  # registry entry itself is dynamic: unchecked
            if site.dynamic_fields:
                yield self.finding(
                    "T103", site.path, site.line, site.column,
                    f"payload of {site.kind!r} uses **kwargs or positional "
                    "arguments; pass explicit keyword fields so the schema "
                    "can be checked statically",
                    severity=Severity.WARNING,
                )
                continue
            got = sorted(site.fields)
            if got != list(expected):
                missing = sorted(set(expected) - set(got))
                extra = sorted(set(got) - set(expected))
                yield self.finding(
                    "T102", site.path, site.line, site.column,
                    f"{site.kind!r} payload drifted from RECORD_SCHEMAS: "
                    f"missing={missing}, unexpected={extra}",
                )


class EventDisciplineChecker(ProjectChecker):
    """E1: sim-owned state mutations must stay on sanctioned paths."""

    family = "E1"
    rules = [
        (
            "E101",
            "sim-layer function mutates sim-owned state but is not "
            "reachable from event callbacks, the step path, or "
            "construction",
        ),
        (
            "E102",
            "sim-owned state (system/microservice/cluster attributes) "
            "mutated from outside the sim layer; route the change through "
            "a sim API instead",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        sim_prefixes = tuple(config.sim_packages)
        if sim_prefixes:
            yield from self._check_reachability(index, config, sim_prefixes)
            yield from self._check_external_writes(index, sim_prefixes)

    @staticmethod
    def _in_packages(module: str, prefixes: Tuple[str, ...]) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in prefixes
        )

    def _check_reachability(
        self,
        index: ProjectIndex,
        config: LintConfig,
        sim_prefixes: Tuple[str, ...],
    ) -> Iterator[Finding]:
        sim_functions = [
            f for f in index.functions
            if self._in_packages(f.module, sim_prefixes)
        ]
        by_name: Dict[str, List[FunctionInfo]] = defaultdict(list)
        for func in sim_functions:
            by_name[func.name].append(func)

        # Roots: construction, dunders, decorated defs (properties,
        # context managers), configured step entry points, event-loop
        # callbacks, function names referenced as values, names called
        # from module top level, and names called from outside the sim
        # layer (public API surface).
        roots: Set[str] = set(config.step_entrypoints)
        roots.update(index.scheduled_callbacks)
        roots.update(index.value_refs)
        roots.update(index.toplevel_calls)
        for func in sim_functions:
            if func.name.startswith("__") and func.name.endswith("__"):
                roots.add(func.name)
            if func.decorated:
                roots.add(func.name)
        for func in index.functions:
            if not self._in_packages(func.module, sim_prefixes):
                roots.update(func.calls)

        # Name-level closure over the sim-internal call graph.
        reachable: Set[str] = set()
        frontier = [n for n in roots if n in by_name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for func in by_name[name]:
                for callee in func.calls:
                    if callee not in reachable and callee in by_name:
                        frontier.append(callee)

        for func in sorted(sim_functions, key=lambda f: (f.path, f.line)):
            if func.name in reachable or func.name in roots:
                continue
            for write in func.writes:
                yield self.finding(
                    "E101", func.path, write.line, write.column,
                    f"`{func.qualname}` writes `{write.target}` but is not "
                    "reachable from event callbacks, the step path, or "
                    "construction — sim state mutated off the event loop "
                    "breaks run reproducibility",
                )

    def _check_external_writes(
        self, index: ProjectIndex, sim_prefixes: Tuple[str, ...]
    ) -> Iterator[Finding]:
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            if self._in_packages(func.module, sim_prefixes):
                continue
            for write in func.writes:
                # Receiver path only: writing `self.system = ...` binds a
                # reference, writing `x.system.attr = ...` mutates sim
                # state through it.
                receiver = write.target.replace("[]", "").split(".")[:-1]
                if any(seg in SIM_OWNED_SEGMENTS for seg in receiver):
                    yield self.finding(
                        "E102", func.path, write.line, write.column,
                        f"`{func.qualname}` ({func.module}) writes "
                        f"`{write.target}` — sim-owned state must be "
                        "mutated through a sim API (submit, run_window, "
                        "set_allocation, ...), not attribute assignment "
                        "from another layer",
                    )


class LayeringChecker(ProjectChecker):
    """L1: enforce the documented import DAG at module scope."""

    family = "L1"
    rules = [
        (
            "L101",
            "module-scope import violates the layer DAG "
            "([tool.reprolint.layers], docs/ARCHITECTURE.md)",
        ),
    ]

    @staticmethod
    def _layer_of(module: str, layers: Dict[str, List[str]]) -> Optional[str]:
        """Longest configured layer prefix owning ``module``."""
        best: Optional[str] = None
        for layer in layers:
            if module == layer or module.startswith(layer + "."):
                if best is None or len(layer) > len(best):
                    best = layer
        return best

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        layers = config.layers
        if not layers:
            return
        for edge in index.imports:
            if not edge.toplevel or not edge.importer:
                continue
            importer_layer = self._layer_of(edge.importer, layers)
            if importer_layer is None:
                continue  # unconstrained module (cli, tests, scripts)
            imported_layer = self._layer_of(edge.imported, layers)
            if imported_layer is None or imported_layer == importer_layer:
                continue
            if imported_layer in layers[importer_layer]:
                continue
            yield self.finding(
                "L101", edge.path, edge.line, edge.column,
                f"`{importer_layer}` must not import `{imported_layer}` "
                f"(module-scope import of `{edge.imported}`); allowed "
                f"dependencies: {sorted(layers[importer_layer]) or 'none'} "
                "— move the import behind a function boundary only if the "
                "edge is genuinely optional, otherwise invert the "
                "dependency",
            )


def _call_closure(
    roots: Set[str], by_name: Dict[str, List[FunctionInfo]]
) -> Set[str]:
    """Name-level reachability closure over the project call graph."""
    reachable: Set[str] = set()
    frontier = [n for n in roots if n in by_name]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for func in by_name[name]:
            for callee in func.calls:
                if callee not in reachable and callee in by_name:
                    frontier.append(callee)
    return reachable


def _functions_by_name(
    index: ProjectIndex,
) -> Dict[str, List[FunctionInfo]]:
    by_name: Dict[str, List[FunctionInfo]] = defaultdict(list)
    for func in index.functions:
        by_name[func.name].append(func)
    return by_name


class NumericDisciplineChecker(ProjectChecker):
    """N1: dtype provenance, hot-loop accumulation, parameter aliasing."""

    family = "N1"
    rules = [
        (
            "N101",
            "mixed float32/float64 provenance in one function or across a "
            "direct call edge; silent promotion doubles memory and breaks "
            "bit-reproducibility — pin one dtype",
        ),
        (
            "N102",
            "bare Python-float accumulation loop in a function reachable "
            "from the hot-path roots; use a vectorised reduction "
            "(np.sum/np.dot) or math.fsum",
        ),
        (
            "N103",
            "in-place numpy mutation (+=, out=, np.copyto, slice-assign) "
            "of a parameter in a function called from other modules; the "
            "caller's array is silently modified through the alias",
        ),
    ]

    @staticmethod
    def _dtype_set(func: FunctionInfo) -> Set[str]:
        return {
            d.name for d in func.dtype_mentions
            if d.name in ("float32", "float64")
        }

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        yield from self._check_mixed_dtypes(index)
        yield from self._check_hot_accumulation(index, config)
        yield from self._check_param_mutations(index)

    def _check_mixed_dtypes(self, index: ProjectIndex) -> Iterator[Finding]:
        by_name = _functions_by_name(index)
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            dtypes = self._dtype_set(func)
            if {"float32", "float64"} <= dtypes:
                site = min(
                    (d for d in func.dtype_mentions if d.name == "float32"),
                    key=lambda d: (d.line, d.column),
                )
                partner = min(
                    (d for d in func.dtype_mentions if d.name == "float64"),
                    key=lambda d: (d.line, d.column),
                )
                yield self.finding(
                    "N101", func.path, site.line, site.column,
                    f"`{func.qualname}` mixes float32 (line {site.line}) "
                    f"and float64 (line {partner.line}); arithmetic "
                    "between them silently promotes — pin one dtype for "
                    "the whole function",
                )
                continue
            if len(dtypes) != 1:
                continue
            (own,) = dtypes
            other = "float64" if own == "float32" else "float32"
            for callee_name in sorted(set(func.calls)):
                candidates = by_name.get(callee_name, [])
                if not candidates:
                    continue
                callee_sets = {
                    frozenset(self._dtype_set(c)) for c in candidates
                }
                # Only an unambiguous, single-dtype callee can contradict.
                if callee_sets != {frozenset({other})}:
                    continue
                site = min(
                    func.dtype_mentions, key=lambda d: (d.line, d.column)
                )
                yield self.finding(
                    "N101", func.path, site.line, site.column,
                    f"`{func.qualname}` pins {own} but calls "
                    f"`{callee_name}` which pins {other}; values crossing "
                    "that edge promote silently — align the dtypes",
                )

    def _check_hot_accumulation(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        by_name = _functions_by_name(index)
        hot = _call_closure(set(config.hotpath_roots), by_name)
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            if func.name not in hot:
                continue
            floats = set(func.float_names)
            for site in func.accum_loops:
                if site.name not in floats:
                    continue
                yield self.finding(
                    "N102", func.path, site.line, site.column,
                    f"`{func.qualname}` (reachable from hot-path roots "
                    f"{sorted(config.hotpath_roots)}) accumulates "
                    f"`{site.name}` one Python float per iteration; "
                    "replace the loop with a vectorised reduction "
                    "(np.sum, np.dot, cumulative ufuncs) or math.fsum",
                )

    def _check_param_mutations(
        self, index: ProjectIndex
    ) -> Iterator[Finding]:
        # "Escapes the defining module", keyed off the import graph: some
        # module that imports the defining module calls the function name.
        importers: Dict[str, Set[str]] = defaultdict(set)
        for edge in index.imports:
            importers[edge.imported].add(edge.importer)
        callers: Dict[str, Set[str]] = defaultdict(set)
        for func in index.functions:
            for callee in func.calls:
                callers[callee].add(func.module)
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            if not func.param_mutations:
                continue
            external = callers.get(func.name, set()) & importers.get(
                func.module, set()
            )
            external.discard(func.module)
            if not external:
                continue
            rebound = set(func.rebound_params)
            for mut in func.param_mutations:
                if mut.param in ("self", "cls") or mut.param in rebound:
                    continue
                yield self.finding(
                    "N103", func.path, mut.line, mut.column,
                    f"`{func.qualname}` mutates parameter `{mut.param}` "
                    f"in place ({mut.kind}) and is called from "
                    f"{sorted(external)}; the caller's array changes "
                    "under it — copy first, or document the contract and "
                    "suppress this line",
                )


class ProcessSafetyChecker(ProjectChecker):
    """P1: callables crossing a process boundary must be self-contained."""

    family = "P1"
    rules = [
        (
            "P101",
            "worker handed to a pool/executor is a lambda, nested "
            "function, or bound method; process pools pickle the callable "
            "— only module-level functions survive the trip",
        ),
        (
            "P102",
            "pool worker reads a module-level mutable global; each worker "
            "process gets a stale copy — pass the state through the task "
            "payload instead",
        ),
        (
            "P103",
            "pool worker uses ambient RNG state or an OS-seeded "
            "generator; derive per-task seeds via derive_cell_seed / "
            "SeedSequence so runs replay identically",
        ),
        (
            "P104",
            "completion-order result combination (as_completed / "
            "imap_unordered) makes output depend on scheduling; use "
            "map/imap or reorder by input index",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        by_name = _functions_by_name(index)
        for site in sorted(
            index.pool_sites, key=lambda s: (s.path, s.line, s.column)
        ):
            yield from self._check_site(site, by_name, index)
        for site in sorted(
            index.unordered_sites, key=lambda s: (s.path, s.line, s.column)
        ):
            where = f" in `{site.function}`" if site.function else ""
            yield self.finding(
                "P104", site.path, site.line, site.column,
                f"`{site.name}`{where} yields results in completion "
                "order — nondeterministic under scheduling jitter; use "
                "map/imap (input order) or index the results and sort",
            )

    def _check_site(self, site, by_name, index) -> Iterator[Finding]:
        if site.worker_form in ("lambda", "other"):
            yield self.finding(
                "P101", site.path, site.line, site.column,
                f"`{site.method}` worker is a "
                f"{'lambda' if site.worker_form == 'lambda' else 'computed expression'}; "
                "process pools pickle workers by qualified name — define "
                "a module-level function",
            )
            return
        if site.worker is None:
            return
        candidates = by_name.get(site.worker, [])
        local = [f for f in candidates if f.module == site.module]
        resolved = local or candidates
        if not resolved:
            return  # defined outside the analysed tree: unknowable
        if all(f.qualname != f.name for f in resolved):
            kind = (
                "bound method" if site.worker_form == "attribute"
                else "nested function"
            )
            yield self.finding(
                "P101", site.path, site.line, site.column,
                f"`{site.method}` worker `{site.worker}` resolves to a "
                f"{kind} ({resolved[0].qualname}); workers must be "
                "module-level functions to pickle cleanly and to keep "
                "their state explicit",
            )
            return
        for func in resolved:
            if func.qualname != func.name:
                continue
            mutable = set(
                index.mutable_globals.get(func.module, ())
            ) & set(func.reads)
            for name in sorted(mutable):
                yield self.finding(
                    "P102", func.path, func.line, func.column,
                    f"pool worker `{func.qualname}` (dispatched at "
                    f"{site.path}:{site.line}) reads module-level mutable "
                    f"global `{name}`; worker processes see a fork-time "
                    "copy — pass it through the task payload",
                )
            ambient = set(
                index.rng_globals.get(func.module, ())
            ) & set(func.reads)
            for name in sorted(ambient):
                yield self.finding(
                    "P103", func.path, func.line, func.column,
                    f"pool worker `{func.qualname}` reads module-level "
                    f"RNG `{name}`; every worker inherits the same "
                    "generator state — derive a per-task seed with "
                    "derive_cell_seed/SeedSequence instead",
                )
            for call in func.rng_calls:
                if call.seeded:
                    continue
                yield self.finding(
                    "P103", func.path, call.line, call.column,
                    f"pool worker `{func.qualname}` constructs "
                    f"`{call.name}()` with no seed (OS entropy); derive "
                    "the seed from the task via "
                    "derive_cell_seed/SeedSequence",
                )


class BatchPairChecker(ProjectChecker):
    """B1: ``@batched_pair`` declarations vs their serial twins."""

    family = "B1"
    rules = [
        (
            "B101",
            "@batched_pair names a serial twin that does not exist in the "
            "same scope (module or class)",
        ),
        (
            "B102",
            "serial/batch parameter lists do not align modulo the leading "
            "batch axis (allowing pluralised array names)",
        ),
        (
            "B103",
            "no test under analysis references the batched side of a "
            "registered pair; add an equivalence test before relying on "
            "the vectorised path",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        functions = {(f.module, f.qualname): f for f in index.functions}
        test_functions = [
            f for f in index.functions if _is_test_path(f.path)
        ]
        for pair in sorted(
            index.batch_pairs, key=lambda b: (b.path, b.line, b.column)
        ):
            if pair.serial_name is None:
                continue  # computed name: unknowable, stays unchecked
            serial_qualname = (
                f"{pair.class_name}.{pair.serial_name}"
                if pair.class_name else pair.serial_name
            )
            serial = functions.get((pair.module, serial_qualname))
            if serial is None:
                scope = pair.class_name or pair.module
                yield self.finding(
                    "B101", pair.path, pair.line, pair.column,
                    f"@batched_pair({pair.serial_name!r}) on "
                    f"`{pair.batch_name}` names no function in `{scope}`; "
                    "the serial twin the equivalence contract rests on "
                    "does not exist",
                )
                continue
            problem = _signature_mismatch(
                serial.params, pair.batch_params
            )
            if problem is not None:
                yield self.finding(
                    "B102", pair.path, pair.line, pair.column,
                    f"`{pair.batch_name}{tuple(pair.batch_params)}` does "
                    f"not align with serial twin "
                    f"`{pair.serial_name}{tuple(serial.params)}`: "
                    f"{problem} — row k of the batch call must mean "
                    "exactly one serial call",
                )
            if test_functions and not any(
                pair.batch_name in f.calls or pair.batch_name in f.reads
                for f in test_functions
            ):
                yield self.finding(
                    "B103", pair.path, pair.line, pair.column,
                    f"no analysed test references `{pair.batch_name}`; "
                    "a registered pair without an equivalence test is an "
                    "unchecked promise",
                )


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    if any(part in ("tests", "test") for part in parts[:-1]):
        return True
    name = parts[-1]
    return name.startswith("test_") or name.endswith("_test.py")


def _strip_receiver(params: List[str]) -> List[str]:
    if params and params[0] in ("self", "cls"):
        return list(params[1:])
    return list(params)


def _plural_of(serial: str, batch: str) -> bool:
    if serial.endswith("y") and batch == serial[:-1] + "ies":
        return True
    return batch in (serial, serial + "s", serial + "es")


def _signature_mismatch(
    serial_params: List[str], batch_params: List[str]
) -> Optional[str]:
    """None when aligned; otherwise a human-readable reason."""
    serial = _strip_receiver(serial_params)
    batch = _strip_receiver(batch_params)
    if len(batch) == len(serial) + 1:
        batch = batch[1:]  # leading batch-size axis (e.g. ``batch``)
    if len(batch) != len(serial):
        return (
            f"{len(batch)} batch parameter(s) vs {len(serial)} serial "
            "(after dropping self/cls and at most one leading batch axis)"
        )
    for s, b in zip(serial, batch):
        if not _plural_of(s, b):
            return f"batch parameter `{b}` does not match serial `{s}`"
    return None


def all_project_checkers() -> List[ProjectChecker]:
    """Fresh instances of every cross-module checker, report order."""
    # Imported lazily: shaperules subclasses ProjectChecker, so a
    # module-level import here would be circular.
    from repro.analysis.shaperules import (
        BatchAxisChecker,
        ShapeDisciplineChecker,
        WorkerPayloadChecker,
    )

    return [
        RngProvenanceChecker(),
        TelemetryConformanceChecker(),
        EventDisciplineChecker(),
        LayeringChecker(),
        NumericDisciplineChecker(),
        ProcessSafetyChecker(),
        BatchPairChecker(),
        ShapeDisciplineChecker(),
        BatchAxisChecker(),
        WorkerPayloadChecker(),
    ]


def project_rule_rows() -> List[Tuple[str, str, str]]:
    """(rule id, family, description) rows for the rule reference."""
    rows: List[Tuple[str, str, str]] = []
    for checker in all_project_checkers():
        for rule_id, description in checker.rules:
            rows.append((rule_id, checker.family, description))
    return rows
