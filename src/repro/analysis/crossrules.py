"""Project-level rule families consuming the :mod:`repro.analysis.index`.

Where :mod:`repro.analysis.rules` checks one module at a time, the four
families here need the whole-project index:

=====  ======================================================================
R1     RNG provenance: duplicate fork labels on the same parent stream
       (R101), constant labels forked inside loops (R102), and RNG
       objects captured in default arguments (R103).  Each one makes two
       "independent" streams share a name or a generator and silently
       correlates experiments.
T1     Telemetry conformance: every ``tracer.emit(...)`` call site must
       use a kind registered in ``RECORD_SCHEMAS`` (T101) with exactly
       the registered payload fields (T102); computed kinds are flagged
       for review (T103).  Keeps instrumentation and
       ``repro.telemetry.records`` from drifting apart.
E1     Event discipline — the race detector for the discrete-event
       simulator: sim-owned state may only be mutated by functions
       reachable from event callbacks, the step path, or construction
       (E101), and never from outside the sim layer at all (E102).
L1     Layering: module-scope imports must follow the DAG documented in
       docs/ARCHITECTURE.md (L101).  Lazy function-level imports are
       exempt by design.
=====  ======================================================================

All checks work on plain index data, so they run identically from a
fresh extraction or the on-disk index cache.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import (
    SIM_OWNED_SEGMENTS,
    EmitSite,
    ForkSite,
    FunctionInfo,
    ProjectIndex,
)

__all__ = [
    "ProjectChecker",
    "RngProvenanceChecker",
    "TelemetryConformanceChecker",
    "EventDisciplineChecker",
    "LayeringChecker",
    "all_project_checkers",
    "project_rule_rows",
]


class ProjectChecker:
    """One cross-module rule family."""

    family: str = ""
    #: (rule id, description) rows, for --list-rules and config validation.
    rules: List[Tuple[str, str]] = []

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        rule: str,
        path: str,
        line: int,
        column: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            column=column,
            rule=rule,
            severity=severity,
            message=message,
            family=self.family,
        )


def _rng_like(receiver: Optional[str]) -> bool:
    """Heuristic: does the receiver look like an RngStream?

    ``fork`` is a common method name; gating on an rng-ish receiver
    (``rng``, ``self._rngs["collect"]``, ``system.workload_rng``) keeps
    the family from firing on unrelated fork() APIs.
    """
    if receiver is None:
        return False
    last = receiver.split(".")[-1]
    return "rng" in last.lower()


class RngProvenanceChecker(ProjectChecker):
    """R1: fork-label provenance across the whole project."""

    family = "R1"
    rules = [
        (
            "R101",
            "the same constant fork label is used at several call sites of "
            "one parent stream; path-qualify the labels so stream names "
            "stay unique and auditable",
        ),
        (
            "R102",
            "constant fork label inside a loop: every iteration creates a "
            "stream with the same name; derive the label from the loop "
            "variable",
        ),
        (
            "R103",
            "RNG captured in a default argument is created once at def "
            "time and shared across calls; default to None and fork inside "
            "the function",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        sites = [s for s in index.fork_sites if _rng_like(s.receiver)]

        # R101: duplicate (receiver, label) across distinct call sites.
        groups: Dict[Tuple[str, str], List[ForkSite]] = defaultdict(list)
        for site in sites:
            if site.label is not None:
                groups[(site.receiver, site.label)].append(site)
        for (receiver, label), members in sorted(groups.items()):
            locations = {(m.path, m.line) for m in members}
            if len(locations) < 2:
                continue
            for site in members:
                others = sorted(
                    f"{m.path}:{m.line}"
                    for m in members
                    if (m.path, m.line) != (site.path, site.line)
                )
                yield self.finding(
                    "R101", site.path, site.line, site.column,
                    f"fork label {label!r} on parent `{receiver}` is also "
                    f"used at {', '.join(others)}; two streams share the "
                    f"name `{receiver}/{label}` — qualify the label with "
                    "its component path",
                )

        for site in sites:
            # R102: constant label forked in a loop.
            if site.label is not None and site.in_loop:
                yield self.finding(
                    "R102", site.path, site.line, site.column,
                    f"constant fork label {site.label!r} inside a loop "
                    "mints identically named streams every iteration; "
                    "derive the label from the loop variable "
                    "(e.g. f\"...{i}\")",
                )
            # R103: fork evaluated in a default argument.
            if site.in_default:
                yield self.finding(
                    "R103", site.path, site.line, site.column,
                    "RNG forked in a default argument is evaluated once at "
                    "def time and shared by every call; default to None "
                    "and fork inside the function body",
                )


class TelemetryConformanceChecker(ProjectChecker):
    """T1: tracer.emit call sites vs the RECORD_SCHEMAS registry."""

    family = "T1"
    rules = [
        (
            "T101",
            "tracer.emit with a record kind that is not registered in "
            "RECORD_SCHEMAS",
        ),
        (
            "T102",
            "tracer.emit payload fields do not match the registered schema "
            "for the kind",
        ),
        (
            "T103",
            "tracer.emit with a computed kind or payload cannot be checked "
            "statically; prefer constant kinds and keyword fields",
        ),
    ]

    @staticmethod
    def _tracer_like(site: EmitSite) -> bool:
        if site.receiver is None:
            return False
        return "tracer" in site.receiver.split(".")[-1].lower()

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        if not index.schemas:
            return  # no registry under analysis: nothing to conform to
        for site in index.emit_sites:
            if not self._tracer_like(site):
                continue
            if site.kind is None:
                yield self.finding(
                    "T103", site.path, site.line, site.column,
                    "record kind is computed at runtime; the schema "
                    "registry cannot vouch for it — use a constant kind "
                    "from repro.telemetry.records.RECORD_SCHEMAS",
                    severity=Severity.WARNING,
                )
                continue
            if site.kind not in index.schemas:
                yield self.finding(
                    "T101", site.path, site.line, site.column,
                    f"record kind {site.kind!r} is not registered in "
                    f"RECORD_SCHEMAS ({index.schema_module}); register the "
                    "schema before emitting it",
                )
                continue
            expected = index.schemas[site.kind]
            if expected is None:
                continue  # registry entry itself is dynamic: unchecked
            if site.dynamic_fields:
                yield self.finding(
                    "T103", site.path, site.line, site.column,
                    f"payload of {site.kind!r} uses **kwargs or positional "
                    "arguments; pass explicit keyword fields so the schema "
                    "can be checked statically",
                    severity=Severity.WARNING,
                )
                continue
            got = sorted(site.fields)
            if got != list(expected):
                missing = sorted(set(expected) - set(got))
                extra = sorted(set(got) - set(expected))
                yield self.finding(
                    "T102", site.path, site.line, site.column,
                    f"{site.kind!r} payload drifted from RECORD_SCHEMAS: "
                    f"missing={missing}, unexpected={extra}",
                )


class EventDisciplineChecker(ProjectChecker):
    """E1: sim-owned state mutations must stay on sanctioned paths."""

    family = "E1"
    rules = [
        (
            "E101",
            "sim-layer function mutates sim-owned state but is not "
            "reachable from event callbacks, the step path, or "
            "construction",
        ),
        (
            "E102",
            "sim-owned state (system/microservice/cluster attributes) "
            "mutated from outside the sim layer; route the change through "
            "a sim API instead",
        ),
    ]

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        sim_prefixes = tuple(config.sim_packages)
        if sim_prefixes:
            yield from self._check_reachability(index, config, sim_prefixes)
            yield from self._check_external_writes(index, sim_prefixes)

    @staticmethod
    def _in_packages(module: str, prefixes: Tuple[str, ...]) -> bool:
        return any(
            module == p or module.startswith(p + ".") for p in prefixes
        )

    def _check_reachability(
        self,
        index: ProjectIndex,
        config: LintConfig,
        sim_prefixes: Tuple[str, ...],
    ) -> Iterator[Finding]:
        sim_functions = [
            f for f in index.functions
            if self._in_packages(f.module, sim_prefixes)
        ]
        by_name: Dict[str, List[FunctionInfo]] = defaultdict(list)
        for func in sim_functions:
            by_name[func.name].append(func)

        # Roots: construction, dunders, decorated defs (properties,
        # context managers), configured step entry points, event-loop
        # callbacks, function names referenced as values, names called
        # from module top level, and names called from outside the sim
        # layer (public API surface).
        roots: Set[str] = set(config.step_entrypoints)
        roots.update(index.scheduled_callbacks)
        roots.update(index.value_refs)
        roots.update(index.toplevel_calls)
        for func in sim_functions:
            if func.name.startswith("__") and func.name.endswith("__"):
                roots.add(func.name)
            if func.decorated:
                roots.add(func.name)
        for func in index.functions:
            if not self._in_packages(func.module, sim_prefixes):
                roots.update(func.calls)

        # Name-level closure over the sim-internal call graph.
        reachable: Set[str] = set()
        frontier = [n for n in roots if n in by_name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for func in by_name[name]:
                for callee in func.calls:
                    if callee not in reachable and callee in by_name:
                        frontier.append(callee)

        for func in sorted(sim_functions, key=lambda f: (f.path, f.line)):
            if func.name in reachable or func.name in roots:
                continue
            for write in func.writes:
                yield self.finding(
                    "E101", func.path, write.line, write.column,
                    f"`{func.qualname}` writes `{write.target}` but is not "
                    "reachable from event callbacks, the step path, or "
                    "construction — sim state mutated off the event loop "
                    "breaks run reproducibility",
                )

    def _check_external_writes(
        self, index: ProjectIndex, sim_prefixes: Tuple[str, ...]
    ) -> Iterator[Finding]:
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            if self._in_packages(func.module, sim_prefixes):
                continue
            for write in func.writes:
                # Receiver path only: writing `self.system = ...` binds a
                # reference, writing `x.system.attr = ...` mutates sim
                # state through it.
                receiver = write.target.replace("[]", "").split(".")[:-1]
                if any(seg in SIM_OWNED_SEGMENTS for seg in receiver):
                    yield self.finding(
                        "E102", func.path, write.line, write.column,
                        f"`{func.qualname}` ({func.module}) writes "
                        f"`{write.target}` — sim-owned state must be "
                        "mutated through a sim API (submit, run_window, "
                        "set_allocation, ...), not attribute assignment "
                        "from another layer",
                    )


class LayeringChecker(ProjectChecker):
    """L1: enforce the documented import DAG at module scope."""

    family = "L1"
    rules = [
        (
            "L101",
            "module-scope import violates the layer DAG "
            "([tool.reprolint.layers], docs/ARCHITECTURE.md)",
        ),
    ]

    @staticmethod
    def _layer_of(module: str, layers: Dict[str, List[str]]) -> Optional[str]:
        """Longest configured layer prefix owning ``module``."""
        best: Optional[str] = None
        for layer in layers:
            if module == layer or module.startswith(layer + "."):
                if best is None or len(layer) > len(best):
                    best = layer
        return best

    def check(self, index: ProjectIndex, config: LintConfig) -> Iterator[Finding]:
        layers = config.layers
        if not layers:
            return
        for edge in index.imports:
            if not edge.toplevel or not edge.importer:
                continue
            importer_layer = self._layer_of(edge.importer, layers)
            if importer_layer is None:
                continue  # unconstrained module (cli, tests, scripts)
            imported_layer = self._layer_of(edge.imported, layers)
            if imported_layer is None or imported_layer == importer_layer:
                continue
            if imported_layer in layers[importer_layer]:
                continue
            yield self.finding(
                "L101", edge.path, edge.line, edge.column,
                f"`{importer_layer}` must not import `{imported_layer}` "
                f"(module-scope import of `{edge.imported}`); allowed "
                f"dependencies: {sorted(layers[importer_layer]) or 'none'} "
                "— move the import behind a function boundary only if the "
                "edge is genuinely optional, otherwise invert the "
                "dependency",
            )


def all_project_checkers() -> List[ProjectChecker]:
    """Fresh instances of every cross-module checker, report order."""
    return [
        RngProvenanceChecker(),
        TelemetryConformanceChecker(),
        EventDisciplineChecker(),
        LayeringChecker(),
    ]


def project_rule_rows() -> List[Tuple[str, str, str]]:
    """(rule id, family, description) rows for the rule reference."""
    rows: List[Tuple[str, str, str]] = []
    for checker in all_project_checkers():
        for rule_id, description in checker.rules:
            rows.append((rule_id, checker.family, description))
    return rows
