"""Command-line front end for reprolint.

::

    python -m repro.analysis                      # lint configured paths
    python -m repro.analysis src/repro/sim        # lint specific targets
    python -m repro.analysis --format json        # machine-readable output
    python -m repro.analysis --format sarif       # SARIF 2.1.0 (CI diffs)
    python -m repro.analysis --update-baseline    # accept current findings
    python -m repro.analysis --list-rules         # rule reference

Exit codes: 0 = clean, 1 = findings reported, 2 = usage/configuration
error.  Also mounted as the ``repro lint`` subcommand.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.config import load_config
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.rules import all_rule_ids, rule_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "reprolint: static determinism / simulation-invariant checks "
            "for the MIRAS reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse "
             "(default: [tool.reprolint] paths, else src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text); sarif emits SARIF 2.1.0 "
             "for CI code-scanning upload",
    )
    parser.add_argument(
        "--root", default=None,
        help="project root for config discovery (default: cwd)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file overriding [tool.reprolint] baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--disable", default=None,
        help="comma-separated rule ids to disable for this run",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule reference and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="rebuild the project index instead of using the on-disk cache",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse and per-file-check N files in parallel "
             "(order-deterministic; default: auto-detect cpu count)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule, family, description in rule_table():
            print(f"{rule}  [{family}]  {description}")
        return 0

    config = load_config(Path(args.root) if args.root else None)
    if args.jobs is None:
        # Output is byte-identical at any job count (input-order merge,
        # project checkers in the parent), so parallelism is safe to
        # default on.
        args.jobs = os.cpu_count() or 1
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.disable:
        extra = [r.strip() for r in args.disable.split(",") if r.strip()]
        known = set(all_rule_ids())
        unknown = [r for r in extra if r not in known]
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2
        config.disable = list(config.disable) + extra

    if args.baseline:
        config.baseline = args.baseline
    if args.no_cache:
        config.cache = None
    baseline_path = config.baseline_path()

    paths = (
        [Path(p) for p in args.paths] if args.paths
        else config.resolved_paths()
    )
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "error: no such path(s): "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2

    if args.update_baseline:
        if baseline_path is None:
            print(
                "error: --update-baseline needs --baseline or a "
                "[tool.reprolint] baseline setting",
                file=sys.stderr,
            )
            return 2
        result = run_analysis(paths, config=config, jobs=args.jobs)
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"baseline updated: {len(result.findings)} finding(s) "
            f"recorded in {baseline_path}"
        )
        return 0

    baseline = (
        Baseline.load(baseline_path) if baseline_path else Baseline.empty()
    )
    result = run_analysis(
        paths, config=config, baseline=baseline, jobs=args.jobs
    )

    if args.format == "json":
        print(json.dumps(_to_json(result), indent=2))
    elif args.format == "sarif":
        print(json.dumps(_to_sarif(result), indent=2))
    else:
        _print_text(result)
    return result.exit_code


def _print_text(result: AnalysisResult) -> None:
    for finding in result.findings:
        print(finding.format_text())
    for path, rule, unused in result.stale_baseline:
        print(
            f"{path}: stale baseline entry: {unused} waived {rule} "
            "finding(s) no longer fire; run --update-baseline to ratchet "
            "the allowance down"
        )
    summary = (
        f"reprolint: {len(result.findings)} finding(s) in "
        f"{result.checked_files} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed inline")
    if result.baselined:
        extras.append(f"{len(result.baselined)} waived by baseline")
    if result.stale_baseline:
        extras.append(f"{len(result.stale_baseline)} stale baseline entries")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary)


def _to_json(result: AnalysisResult) -> dict:
    """Machine-readable report.

    Every finding carries its rule ``family`` and a ``status``
    (``reported`` / ``suppressed`` / ``baselined``) so downstream tooling
    (the baseline ratchet, CI annotations) never re-parses text output.
    """

    def annotate(findings, status):
        entries = []
        for finding in findings:
            entry = finding.to_dict()
            entry["status"] = status
            entries.append(entry)
        return entries

    return {
        "version": 2,
        "findings": annotate(result.findings, "reported"),
        "suppressed": annotate(result.suppressed, "suppressed"),
        "baselined": annotate(result.baselined, "baselined"),
        "stale_baseline": [
            {"path": path, "rule": rule, "unused": unused}
            for path, rule, unused in result.stale_baseline
        ],
        "checked_files": result.checked_files,
        "exit_code": result.exit_code,
    }


#: SARIF severity levels for reprolint severities.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _to_sarif(result: AnalysisResult) -> dict:
    """SARIF 2.1.0 report (one run, reported findings only).

    Suppressed and baselined findings are emitted with SARIF's
    ``suppressions`` field set, so code-scanning UIs show them as
    reviewed rather than open.
    """
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": description},
            "properties": {"family": family},
        }
        for rule, family, description in rule_table()
    ]

    def to_result(finding, suppression_kind=None):
        entry = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity.value, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                },
            }],
        }
        if suppression_kind is not None:
            entry["suppressions"] = [{"kind": suppression_kind}]
        return entry

    results = [to_result(f) for f in result.findings]
    results += [to_result(f, "inSource") for f in result.suppressed]
    results += [to_result(f, "external") for f in result.baselined]
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "rules": rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
        }],
    }


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
