"""The project index: one whole-tree pass that cross-module rules consume.

Per-file rules (the D/S/A families in :mod:`repro.analysis.rules`) see one
AST at a time.  The four project-level families need facts that span
modules:

- **symbols** — top-level names per module (the symbol table),
- **imports** — which project module imports which, and whether the
  import happens at module scope or lazily inside a function,
- **fork sites** — every ``<rng>.fork(label)`` call with its resolved
  constant label, receiver, enclosing function, and loop context (R1),
- **emit sites** — every ``<tracer>.emit(kind, field=...)`` call with its
  resolved constant kind and keyword field set (T1),
- **schema registry** — the ``RECORD_SCHEMAS`` mapping parsed out of the
  telemetry records module, so instrumentation is checked against the
  registry *as written* without importing runtime code (T1),
- **call graph** — name-level call edges, attribute writes, scheduled
  event callbacks, and value-referenced functions, from which the E1
  event-discipline family computes reachability.

Everything in the index is plain data (str/int/bool containers), so the
whole index serialises to JSON.  :func:`load_or_build_index` uses that to
cache the index on disk keyed by a digest of every source file — edits
invalidate the cache, and a warm ``repro lint`` skips the cross-module
extraction pass entirely.

The extraction is deliberately *approximate where Python is dynamic*:
f-string fork labels index as ``label=None``, ``getattr``-style access
contributes nothing, and unresolvable registry entries mark their kind as
unchecked.  Rules treat None as "unknown — stay silent", never as an
error, so dynamic code degrades gracefully (see
``tests/analysis/test_index.py``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.project import (
    ModuleInfo,
    Project,
    dotted_name,
    receiver_key,
    top_level_bindings,
)

__all__ = [
    "ForkSite",
    "EmitSite",
    "ImportEdge",
    "FunctionInfo",
    "AttributeWrite",
    "ProjectIndex",
    "build_index",
    "load_or_build_index",
    "project_digest",
]

#: Bumped whenever the index shape changes; stale on-disk caches with a
#: different version are rebuilt, never reinterpreted.
INDEX_VERSION = 1

#: Receiver path segments that mark state as sim-owned for the E1 family.
SIM_OWNED_SEGMENTS = ("system", "microservice", "microservices", "cluster")


@dataclass
class ForkSite:
    """One ``<receiver>.fork(<label>)`` call site."""

    path: str
    line: int
    column: int
    module: str
    #: Normalised receiver (``rng``, ``self._rngs["collect"]``); None when
    #: the receiver is too dynamic to key.
    receiver: Optional[str]
    #: Constant string label; None for f-strings / computed labels.
    label: Optional[str]
    #: Qualified enclosing scope (``Class.method``); "" at module level.
    function: str
    #: True when the call sits inside a for/while loop body.
    in_loop: bool
    #: True when the call appears inside a default-argument expression.
    in_default: bool


@dataclass
class EmitSite:
    """One ``<receiver>.emit(kind, field=..., ...)`` call site."""

    path: str
    line: int
    column: int
    module: str
    receiver: Optional[str]
    #: Constant record kind; None when the kind is computed.
    kind: Optional[str]
    #: Keyword payload field names, in call order.
    fields: List[str]
    #: True when the call uses ``**kwargs`` or positional payload args, in
    #: which case the field set is unknowable statically.
    dynamic_fields: bool


@dataclass
class ImportEdge:
    """One project-internal import."""

    path: str
    line: int
    column: int
    importer: str
    imported: str
    #: False for imports nested inside a function (sanctioned lazy imports).
    toplevel: bool


@dataclass
class AttributeWrite:
    """One assignment/augassign/del targeting an attribute chain."""

    line: int
    column: int
    #: Dotted target; subscripted chains get a ``[]`` suffix on the base
    #: (``self._window_arrivals[]``).
    target: str


@dataclass
class FunctionInfo:
    """One function or method definition."""

    path: str
    line: int
    column: int
    module: str
    #: ``Class.method`` within the module; plain name for free functions.
    qualname: str
    name: str
    #: Simple names this function calls (last dotted segment).
    calls: List[str] = field(default_factory=list)
    writes: List[AttributeWrite] = field(default_factory=list)
    decorated: bool = False


@dataclass
class ProjectIndex:
    """Whole-project facts, all plain data (JSON-serialisable)."""

    version: int = INDEX_VERSION
    digest: str = ""
    #: module dotted name -> sorted top-level symbol names.
    symbols: Dict[str, List[str]] = field(default_factory=dict)
    imports: List[ImportEdge] = field(default_factory=list)
    fork_sites: List[ForkSite] = field(default_factory=list)
    emit_sites: List[EmitSite] = field(default_factory=list)
    #: record kind -> sorted payload fields; None when the registry entry
    #: could not be resolved statically (kind is then left unchecked).
    schemas: Dict[str, Optional[List[str]]] = field(default_factory=dict)
    #: Module that defines the schema registry, "" when none was found
    #: (T1 checks disable themselves in that case).
    schema_module: str = ""
    functions: List[FunctionInfo] = field(default_factory=list)
    #: Simple names of callables scheduled on the event loop.
    scheduled_callbacks: List[str] = field(default_factory=list)
    #: Simple names referenced as values (callbacks stored, passed, ...).
    value_refs: List[str] = field(default_factory=list)
    #: Simple names called from module top-level code.
    toplevel_calls: List[str] = field(default_factory=list)

    # Serialisation --------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ProjectIndex":
        index = cls(version=data["version"], digest=data["digest"])
        index.symbols = {k: list(v) for k, v in data["symbols"].items()}
        index.imports = [ImportEdge(**e) for e in data["imports"]]
        index.fork_sites = [ForkSite(**s) for s in data["fork_sites"]]
        index.emit_sites = [EmitSite(**s) for s in data["emit_sites"]]
        index.schemas = {
            k: (list(v) if v is not None else None)
            for k, v in data["schemas"].items()
        }
        index.schema_module = data["schema_module"]
        index.functions = [
            FunctionInfo(
                path=f["path"],
                line=f["line"],
                column=f["column"],
                module=f["module"],
                qualname=f["qualname"],
                name=f["name"],
                calls=list(f["calls"]),
                writes=[AttributeWrite(**w) for w in f["writes"]],
                decorated=f["decorated"],
            )
            for f in data["functions"]
        ]
        index.scheduled_callbacks = list(data["scheduled_callbacks"])
        index.value_refs = list(data["value_refs"])
        index.toplevel_calls = list(data["toplevel_calls"])
        return index


def project_digest(project: Project) -> str:
    """Content digest over every module; the index cache key."""
    hasher = hashlib.sha256()
    hasher.update(f"v{INDEX_VERSION}".encode())
    for module in sorted(project.modules, key=lambda m: m.display_path):
        hasher.update(module.display_path.encode())
        hasher.update(b"\x00")
        hasher.update(module.source.encode("utf-8", errors="replace"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


def build_index(project: Project) -> ProjectIndex:
    """Extract the whole-project index from parsed modules."""
    index = ProjectIndex(digest=project_digest(project))
    scheduled: Set[str] = set()
    value_refs: Set[str] = set()
    toplevel_calls: Set[str] = set()
    for module in project.modules:
        if module.module:
            index.symbols[module.module] = sorted(
                top_level_bindings(module.tree)
            )
        _extract_imports(module, index)
        visitor = _ModuleVisitor(module, index, scheduled, value_refs,
                                 toplevel_calls)
        visitor.visit(module.tree)
        _extract_schema_registry(module, index)
    index.scheduled_callbacks = sorted(scheduled)
    index.value_refs = sorted(value_refs)
    index.toplevel_calls = sorted(toplevel_calls)
    return index


# Imports ------------------------------------------------------------------

def _extract_imports(module: ModuleInfo, index: ProjectIndex) -> None:
    for node, nested in _walk_with_nesting(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                index.imports.append(ImportEdge(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    importer=module.module,
                    imported=alias.name,
                    toplevel=not nested,
                ))
        elif isinstance(node, ast.ImportFrom):
            target = _absolute_import_target(module, node)
            if not target:
                continue
            index.imports.append(ImportEdge(
                path=module.display_path,
                line=node.lineno,
                column=node.col_offset + 1,
                importer=module.module,
                imported=target,
                toplevel=not nested,
            ))


def _walk_with_nesting(tree: ast.Module):
    """Yield ``(node, inside_function)`` over the whole tree."""
    stack = [(tree, False)]
    while stack:
        node, nested = stack.pop()
        yield node, nested
        child_nested = nested or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_nested))


def _absolute_import_target(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ImportFrom pulls from."""
    if node.level == 0:
        return node.module or ""
    package_parts = module.module.split(".") if module.module else []
    if not module.is_package_init and package_parts:
        package_parts = package_parts[:-1]
    up = node.level - 1
    if up:
        package_parts = package_parts[: max(0, len(package_parts) - up)]
    if node.module:
        package_parts = package_parts + node.module.split(".")
    return ".".join(package_parts)


# Schema registry ----------------------------------------------------------

def _extract_schema_registry(module: ModuleInfo, index: ProjectIndex) -> None:
    """Parse a top-level ``RECORD_SCHEMAS = {...}`` mapping, if present."""
    for node in module.tree.body:
        target_names = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            target_names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target_names = [node.target.id]
            value = node.value
        if "RECORD_SCHEMAS" not in target_names or not isinstance(
            value, ast.Dict
        ):
            continue
        schemas: Dict[str, Optional[List[str]]] = {}
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue  # computed kind: unindexable, skip gracefully
            schemas[key.value] = _resolve_field_set(val)
        if schemas:
            index.schemas = schemas
            index.schema_module = module.module
        return


def _resolve_field_set(node: ast.AST) -> Optional[List[str]]:
    """Constant string elements of ``frozenset({...})`` / set / list / tuple."""
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is None or callee.split(".")[-1] not in (
            "frozenset", "set", "tuple", "list",
        ):
            return None
        if len(node.args) != 1 or node.keywords:
            return None
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        fields: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                fields.append(elt.value)
            else:
                return None
        return sorted(fields)
    return None


# Call sites, call graph, writes -------------------------------------------

class _ModuleVisitor(ast.NodeVisitor):
    """Single pass over one module collecting fork/emit sites and the
    call-graph facts, tracking scope, loop depth, and default-arg context."""

    def __init__(
        self,
        module: ModuleInfo,
        index: ProjectIndex,
        scheduled: Set[str],
        value_refs: Set[str],
        toplevel_calls: Set[str],
    ):
        self.module = module
        self.index = index
        self.scheduled = scheduled
        self.value_refs = value_refs
        self.toplevel_calls = toplevel_calls
        self.scope: List[str] = []          # class/function name stack
        self.function_stack: List[FunctionInfo] = []
        self.loop_depth = 0
        self.in_default = 0

    # Scope tracking -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def _visit_function(self, node) -> None:
        qualname = ".".join(self.scope + [node.name])
        info = FunctionInfo(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            qualname=qualname,
            name=node.name,
            decorated=bool(node.decorator_list),
        )
        self.index.functions.append(info)
        # Defaults evaluate in the *enclosing* scope, at def time.
        self.in_default += 1
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        self.in_default -= 1
        for decorator in node.decorator_list:
            self.visit(decorator)
        self.scope.append(node.name)
        self.function_stack.append(info)
        outer_loop_depth, self.loop_depth = self.loop_depth, 0
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth = outer_loop_depth
        self.function_stack.pop()
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # Loops ----------------------------------------------------------------
    def _visit_loop(self, node) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # Writes ---------------------------------------------------------------
    def _record_write(self, target: ast.AST, node: ast.AST) -> None:
        if self.function_stack:
            desc = _write_target(target)
            if desc is not None:
                self.function_stack[-1].writes.append(AttributeWrite(
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    target=desc,
                ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, node)
        self.generic_visit(node)

    # Calls and value references -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        simple = _simple_call_name(node.func)
        if simple is not None:
            if self.function_stack:
                self.function_stack[-1].calls.append(simple)
            else:
                self.toplevel_calls.add(simple)
            if simple in ("schedule", "schedule_at"):
                self._record_scheduled(node)
            elif simple == "fork":
                self._record_fork(node)
            elif simple == "emit":
                self._record_emit(node)
        # Function references passed as arguments are callback roots.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record_value_ref(arg)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    def _record_value_ref(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            self.value_refs.add(node.attr)
        elif isinstance(node, ast.Name):
            self.value_refs.add(node.id)

    def _record_scheduled(self, node: ast.Call) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                for sub in ast.walk(arg.body):
                    if isinstance(sub, ast.Call):
                        name = _simple_call_name(sub.func)
                        if name is not None:
                            self.scheduled.add(name)
            elif isinstance(arg, ast.Attribute):
                self.scheduled.add(arg.attr)
            elif isinstance(arg, ast.Name):
                self.scheduled.add(arg.id)

    def _record_fork(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        label: Optional[str] = None
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                label = first.value
        self.index.fork_sites.append(ForkSite(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            receiver=receiver_key(node.func.value),
            label=label,
            function=(
                self.function_stack[-1].qualname
                if self.function_stack else ""
            ),
            in_loop=self.loop_depth > 0,
            in_default=self.in_default > 0,
        ))

    def _record_emit(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        kind: Optional[str] = None
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                kind = first.value
        fields = [kw.arg for kw in node.keywords if kw.arg is not None]
        dynamic = (
            any(kw.arg is None for kw in node.keywords)  # **kwargs
            or len(node.args) > 1                        # positional payload
        )
        self.index.emit_sites.append(EmitSite(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            receiver=receiver_key(node.func.value),
            kind=kind,
            fields=fields,
            dynamic_fields=dynamic,
        ))


def _simple_call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _write_target(target: ast.AST) -> Optional[str]:
    """Dotted description of an attribute-chain write target, else None."""
    suffix = ""
    if isinstance(target, ast.Subscript):
        suffix = "[]"
        target = target.value
    if not isinstance(target, ast.Attribute):
        return None
    dotted = dotted_name(target)
    if dotted is None:
        return None
    return dotted + suffix


# Cache --------------------------------------------------------------------

def load_or_build_index(
    project: Project, cache_path: Optional[Path] = None
) -> ProjectIndex:
    """Return the index for ``project``, via the on-disk cache if valid.

    The cache is keyed by :func:`project_digest`; any source edit, file
    addition, or removal changes the digest and forces a rebuild.  Cache
    IO failures (corrupt file, permissions) silently fall back to a
    rebuild — the cache is an optimisation, never a correctness input.
    """
    digest = project_digest(project)
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text(encoding="utf-8"))
            if (
                data.get("version") == INDEX_VERSION
                and data.get("digest") == digest
            ):
                return ProjectIndex.from_dict(data)
        except (ValueError, KeyError, TypeError):
            pass
    index = build_index(project)
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(index.to_dict()) + "\n", encoding="utf-8"
            )
        except OSError:
            pass
    return index
