"""The project index: one whole-tree pass that cross-module rules consume.

Per-file rules (the D/S/A families in :mod:`repro.analysis.rules`) see one
AST at a time.  The four project-level families need facts that span
modules:

- **symbols** — top-level names per module (the symbol table),
- **imports** — which project module imports which, and whether the
  import happens at module scope or lazily inside a function,
- **fork sites** — every ``<rng>.fork(label)`` call with its resolved
  constant label, receiver, enclosing function, and loop context (R1),
- **emit sites** — every ``<tracer>.emit(kind, field=...)`` call with its
  resolved constant kind and keyword field set (T1),
- **schema registry** — the ``RECORD_SCHEMAS`` mapping parsed out of the
  telemetry records module, so instrumentation is checked against the
  registry *as written* without importing runtime code (T1),
- **call graph** — name-level call edges, attribute writes, scheduled
  event callbacks, and value-referenced functions, from which the E1
  event-discipline family computes reachability,
- **vector-safety facts** — per-function parameter lists, name reads,
  explicit dtype mentions, in-loop scalar accumulations, and in-place
  mutations of parameters (N1/B1), plus per-module mutable/RNG global
  tables, process-pool dispatch sites and order-nondeterministic
  result-combination sites (P1), and ``@batched_pair`` declarations (B1),
- **shape IR** — a per-function statement/expression mini-IR (plain
  dicts, see :data:`FunctionInfo.shape_stmts`) that the
  :mod:`repro.analysis.shapes` abstract interpreter evaluates to infer
  symbolic array shapes and dtypes (V1/V2), and per-pool-site payload
  descriptors for the worker-serialization family (W1).

Everything in the index is plain data (str/int/bool containers), so the
whole index serialises to JSON.  :func:`load_or_build_index` uses that to
cache the index on disk keyed by a digest of every source file — edits
invalidate the cache, and a warm ``repro lint`` skips the cross-module
extraction pass entirely.

The extraction is deliberately *approximate where Python is dynamic*:
f-string fork labels index as ``label=None``, ``getattr``-style access
contributes nothing, and unresolvable registry entries mark their kind as
unchecked.  Rules treat None as "unknown — stay silent", never as an
error, so dynamic code degrades gracefully (see
``tests/analysis/test_index.py``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.project import (
    ModuleInfo,
    Project,
    dotted_name,
    receiver_key,
    top_level_bindings,
)

__all__ = [
    "ForkSite",
    "EmitSite",
    "ImportEdge",
    "FunctionInfo",
    "AttributeWrite",
    "ParamMutation",
    "AccumSite",
    "DtypeMention",
    "RngCall",
    "PayloadArg",
    "PoolSite",
    "UnorderedSite",
    "BatchPairSite",
    "ProjectIndex",
    "build_index",
    "load_or_build_index",
    "project_digest",
]

#: Bumped whenever the index shape changes; stale on-disk caches with a
#: different version are rebuilt, never reinterpreted.
INDEX_VERSION = 3

#: Receiver path segments that mark state as sim-owned for the E1 family.
SIM_OWNED_SEGMENTS = ("system", "microservice", "microservices", "cluster")

#: Literal float-dtype tokens the N1 family tracks.
DTYPE_TOKENS = frozenset({"float16", "float32", "float64", "float128"})

#: Pool/executor dispatch methods whose first argument is the worker.
POOL_DISPATCH_METHODS = frozenset({
    "map", "submit", "imap", "imap_unordered", "apply_async", "starmap",
})

#: numpy wrappers that return (a view of) their argument unchanged when it
#: is already an ndarray — rebinding through them preserves aliasing.
ALIAS_PRESERVING_CALLS = frozenset({
    "asarray", "asanyarray", "ascontiguousarray",
    "atleast_1d", "atleast_2d", "atleast_3d",
})

#: Call targets whose result is module-level RNG state when bound at top
#: level (``_RNG = np.random.default_rng()``).
RNG_FACTORY_NAMES = frozenset({
    "default_rng", "RandomState", "Generator", "SeedSequence",
    "RngStream", "Random",
})

#: Generator constructors whose *argument-less* form seeds from the OS —
#: nondeterministic by construction (P103 raw material).
RNG_CONSTRUCTOR_NAMES = frozenset({"default_rng", "RandomState", "Random"})


@dataclass
class ForkSite:
    """One ``<receiver>.fork(<label>)`` call site."""

    path: str
    line: int
    column: int
    module: str
    #: Normalised receiver (``rng``, ``self._rngs["collect"]``); None when
    #: the receiver is too dynamic to key.
    receiver: Optional[str]
    #: Constant string label; None for f-strings / computed labels.
    label: Optional[str]
    #: Qualified enclosing scope (``Class.method``); "" at module level.
    function: str
    #: True when the call sits inside a for/while loop body.
    in_loop: bool
    #: True when the call appears inside a default-argument expression.
    in_default: bool


@dataclass
class EmitSite:
    """One ``<receiver>.emit(kind, field=..., ...)`` call site."""

    path: str
    line: int
    column: int
    module: str
    receiver: Optional[str]
    #: Constant record kind; None when the kind is computed.
    kind: Optional[str]
    #: Keyword payload field names, in call order.
    fields: List[str]
    #: True when the call uses ``**kwargs`` or positional payload args, in
    #: which case the field set is unknowable statically.
    dynamic_fields: bool


@dataclass
class ImportEdge:
    """One project-internal import."""

    path: str
    line: int
    column: int
    importer: str
    imported: str
    #: False for imports nested inside a function (sanctioned lazy imports).
    toplevel: bool


@dataclass
class AttributeWrite:
    """One assignment/augassign/del targeting an attribute chain."""

    line: int
    column: int
    #: Dotted target; subscripted chains get a ``[]`` suffix on the base
    #: (``self._window_arrivals[]``).
    target: str


@dataclass
class ParamMutation:
    """One in-place write to a function parameter (N103 raw material)."""

    line: int
    column: int
    param: str
    #: ``augassign`` (``x += ...``), ``subscript`` (``x[...] = ...`` or
    #: ``x[...] += ...``), ``out`` (``out=x`` keyword), ``copyto``
    #: (``np.copyto(x, ...)``).
    kind: str


@dataclass
class AccumSite:
    """One in-loop ``name += ...`` accumulation on a plain local name."""

    line: int
    column: int
    name: str


@dataclass
class DtypeMention:
    """One literal float-dtype token (``np.float32``, ``"float64"``)."""

    line: int
    column: int
    name: str


@dataclass
class RngCall:
    """One RNG constructor call (``default_rng``, ``RandomState``, ...)."""

    line: int
    column: int
    name: str
    #: False when called with no arguments at all — OS-entropy seeded.
    seeded: bool


@dataclass
class PayloadArg:
    """One value flowing across a process boundary at a pool site (W1)."""

    line: int
    column: int
    #: ``name`` | ``attribute`` | ``lambda`` | ``call`` | ``const`` |
    #: ``other``.
    form: str
    #: Simple name for ``name``/``attribute`` forms; None otherwise.
    name: Optional[str] = None
    #: Simple callee name for ``call`` forms; None otherwise.
    callee: Optional[str] = None
    #: Dotted receiver chain for ``attribute`` forms (``self.tracer``).
    chain: Optional[str] = None


@dataclass
class PoolSite:
    """One pool/executor dispatch (``pool.map(fn, ...)``) or
    ``Process(target=fn)`` construction."""

    path: str
    line: int
    column: int
    module: str
    #: Dispatch method: ``map``, ``submit``, ..., or ``Process``.
    method: str
    receiver: Optional[str]
    #: Simple name of the worker callable; None when unresolvable.
    worker: Optional[str]
    #: ``name`` | ``attribute`` | ``lambda`` | ``other`` | ``missing``.
    worker_form: str
    #: Qualified enclosing scope; "" at module level.
    function: str
    #: Every argument shipped to the worker (everything after the
    #: callable itself) — the raw material of the W1 payload rules.
    payloads: List[PayloadArg] = field(default_factory=list)


@dataclass
class UnorderedSite:
    """One completion-order iteration site (``as_completed``,
    ``imap_unordered``) — results arrive in nondeterministic order."""

    path: str
    line: int
    column: int
    module: str
    name: str
    function: str


@dataclass
class BatchPairSite:
    """One ``@batched_pair("serial")`` declaration, read from source."""

    path: str
    line: int
    column: int
    module: str
    #: Directly enclosing class; "" for free functions.
    class_name: str
    batch_name: str
    #: Declared serial twin's simple name; None for a non-constant
    #: argument (left unchecked).
    serial_name: Optional[str]
    #: Positional parameter names of the batch function, in order.
    batch_params: List[str] = field(default_factory=list)
    #: Constant ``shapes="..."`` contract string from the decorator; None
    #: when absent or computed (V201 then fires on registered twins).
    shapes: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    path: str
    line: int
    column: int
    module: str
    #: ``Class.method`` within the module; plain name for free functions.
    qualname: str
    name: str
    #: Simple names this function calls (last dotted segment).
    calls: List[str] = field(default_factory=list)
    writes: List[AttributeWrite] = field(default_factory=list)
    decorated: bool = False
    #: Positional parameter names, in order (posonly + regular).
    params: List[str] = field(default_factory=list)
    #: Sorted plain names this function reads (Name loads).
    reads: List[str] = field(default_factory=list)
    dtype_mentions: List[DtypeMention] = field(default_factory=list)
    accum_loops: List[AccumSite] = field(default_factory=list)
    #: Sorted local names ever assigned a float constant (``total = 0.0``).
    float_names: List[str] = field(default_factory=list)
    param_mutations: List[ParamMutation] = field(default_factory=list)
    #: Sorted parameters rebound to a fresh object (alias broken) before
    #: any analysis question matters; excluded from mutation findings.
    rebound_params: List[str] = field(default_factory=list)
    rng_calls: List[RngCall] = field(default_factory=list)
    #: Sorted names of functions/classes defined *inside* this function;
    #: pickling them across a process boundary always fails (W101).
    local_defs: List[str] = field(default_factory=list)
    #: Local name -> simple callee name of its last call-result binding
    #: (``fh = open(...)`` -> ``{"fh": "open"}``); W102 raw material.
    call_bindings: Dict[str, str] = field(default_factory=dict)
    #: Statement/expression mini-IR of the function body (plain JSON
    #: dicts) evaluated by :mod:`repro.analysis.shapes`.
    shape_stmts: List[Dict] = field(default_factory=list)


@dataclass
class ProjectIndex:
    """Whole-project facts, all plain data (JSON-serialisable)."""

    version: int = INDEX_VERSION
    digest: str = ""
    #: module dotted name -> sorted top-level symbol names.
    symbols: Dict[str, List[str]] = field(default_factory=dict)
    imports: List[ImportEdge] = field(default_factory=list)
    fork_sites: List[ForkSite] = field(default_factory=list)
    emit_sites: List[EmitSite] = field(default_factory=list)
    #: record kind -> sorted payload fields; None when the registry entry
    #: could not be resolved statically (kind is then left unchecked).
    schemas: Dict[str, Optional[List[str]]] = field(default_factory=dict)
    #: Module that defines the schema registry, "" when none was found
    #: (T1 checks disable themselves in that case).
    schema_module: str = ""
    functions: List[FunctionInfo] = field(default_factory=list)
    #: Simple names of callables scheduled on the event loop.
    scheduled_callbacks: List[str] = field(default_factory=list)
    #: Simple names referenced as values (callbacks stored, passed, ...).
    value_refs: List[str] = field(default_factory=list)
    #: Simple names called from module top-level code.
    toplevel_calls: List[str] = field(default_factory=list)
    pool_sites: List[PoolSite] = field(default_factory=list)
    unordered_sites: List[UnorderedSite] = field(default_factory=list)
    batch_pairs: List[BatchPairSite] = field(default_factory=list)
    #: module -> sorted top-level names bound to mutable literals
    #: (list/dict/set), excluding ALL_CAPS constant registries.
    mutable_globals: Dict[str, List[str]] = field(default_factory=dict)
    #: module -> sorted top-level names bound to RNG factory calls.
    rng_globals: Dict[str, List[str]] = field(default_factory=dict)

    # Serialisation --------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ProjectIndex":
        index = cls(version=data["version"], digest=data["digest"])
        index.symbols = {k: list(v) for k, v in data["symbols"].items()}
        index.imports = [ImportEdge(**e) for e in data["imports"]]
        index.fork_sites = [ForkSite(**s) for s in data["fork_sites"]]
        index.emit_sites = [EmitSite(**s) for s in data["emit_sites"]]
        index.schemas = {
            k: (list(v) if v is not None else None)
            for k, v in data["schemas"].items()
        }
        index.schema_module = data["schema_module"]
        index.functions = [
            FunctionInfo(
                path=f["path"],
                line=f["line"],
                column=f["column"],
                module=f["module"],
                qualname=f["qualname"],
                name=f["name"],
                calls=list(f["calls"]),
                writes=[AttributeWrite(**w) for w in f["writes"]],
                decorated=f["decorated"],
                params=list(f["params"]),
                reads=list(f["reads"]),
                dtype_mentions=[
                    DtypeMention(**d) for d in f["dtype_mentions"]
                ],
                accum_loops=[AccumSite(**a) for a in f["accum_loops"]],
                float_names=list(f["float_names"]),
                param_mutations=[
                    ParamMutation(**m) for m in f["param_mutations"]
                ],
                rebound_params=list(f["rebound_params"]),
                rng_calls=[RngCall(**r) for r in f["rng_calls"]],
                local_defs=list(f["local_defs"]),
                call_bindings=dict(f["call_bindings"]),
                shape_stmts=list(f["shape_stmts"]),
            )
            for f in data["functions"]
        ]
        index.scheduled_callbacks = list(data["scheduled_callbacks"])
        index.value_refs = list(data["value_refs"])
        index.toplevel_calls = list(data["toplevel_calls"])
        index.pool_sites = [
            PoolSite(
                **{k: v for k, v in s.items() if k != "payloads"},
                payloads=[PayloadArg(**p) for p in s["payloads"]],
            )
            for s in data["pool_sites"]
        ]
        index.unordered_sites = [
            UnorderedSite(**s) for s in data["unordered_sites"]
        ]
        index.batch_pairs = [
            BatchPairSite(
                path=b["path"],
                line=b["line"],
                column=b["column"],
                module=b["module"],
                class_name=b["class_name"],
                batch_name=b["batch_name"],
                serial_name=b["serial_name"],
                batch_params=list(b["batch_params"]),
                shapes=b["shapes"],
            )
            for b in data["batch_pairs"]
        ]
        index.mutable_globals = {
            k: list(v) for k, v in data["mutable_globals"].items()
        }
        index.rng_globals = {
            k: list(v) for k, v in data["rng_globals"].items()
        }
        return index


def project_digest(project: Project, fingerprint: str = "") -> str:
    """Content digest over every module; the index cache key.

    ``fingerprint`` folds analysis configuration into the key (see
    :meth:`LintConfig.fingerprint`) so a ``[tool.reprolint]`` change
    invalidates the cache even when no source changed.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{INDEX_VERSION}".encode())
    if fingerprint:
        hasher.update(b"\x02")
        hasher.update(fingerprint.encode("utf-8", errors="replace"))
        hasher.update(b"\x03")
    for module in sorted(project.modules, key=lambda m: m.display_path):
        hasher.update(module.display_path.encode())
        hasher.update(b"\x00")
        hasher.update(module.source.encode("utf-8", errors="replace"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


def build_index(project: Project, fingerprint: str = "") -> ProjectIndex:
    """Extract the whole-project index from parsed modules."""
    index = ProjectIndex(digest=project_digest(project, fingerprint))
    scheduled: Set[str] = set()
    value_refs: Set[str] = set()
    toplevel_calls: Set[str] = set()
    for module in project.modules:
        if module.module:
            index.symbols[module.module] = sorted(
                top_level_bindings(module.tree)
            )
        _extract_imports(module, index)
        visitor = _ModuleVisitor(module, index, scheduled, value_refs,
                                 toplevel_calls)
        visitor.visit(module.tree)
        _extract_schema_registry(module, index)
        _extract_global_tables(module, index)
    index.scheduled_callbacks = sorted(scheduled)
    index.value_refs = sorted(value_refs)
    index.toplevel_calls = sorted(toplevel_calls)
    return index


def _extract_global_tables(module: ModuleInfo, index: ProjectIndex) -> None:
    """Record module-level mutable literals and RNG factory bindings."""
    if not module.module:
        return
    mutable: Set[str] = set()
    rng: Set[str] = set()
    for node in module.tree.body:
        targets: List[str] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target.id]
            value = node.value
        if not targets or value is None:
            continue
        if _is_mutable_literal(value):
            # ALL_CAPS registries and dunders (__all__) are constants by
            # convention; a lowercase mutable global is the hazard.
            mutable.update(
                t for t in targets
                if t.upper() != t and not t.startswith("__")
            )
        if _is_rng_factory(value):
            rng.update(targets)
    if mutable:
        index.mutable_globals[module.module] = sorted(mutable)
    if rng:
        index.rng_globals[module.module] = sorted(rng)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] in (
            "list", "dict", "set", "defaultdict", "deque", "Counter",
            "OrderedDict",
        ):
            return True
    return False


def _is_rng_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    callee = dotted_name(node.func)
    return (
        callee is not None
        and callee.split(".")[-1] in RNG_FACTORY_NAMES
    )


# Imports ------------------------------------------------------------------

def _extract_imports(module: ModuleInfo, index: ProjectIndex) -> None:
    for node, nested in _walk_with_nesting(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                index.imports.append(ImportEdge(
                    path=module.display_path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    importer=module.module,
                    imported=alias.name,
                    toplevel=not nested,
                ))
        elif isinstance(node, ast.ImportFrom):
            target = _absolute_import_target(module, node)
            if not target:
                continue
            index.imports.append(ImportEdge(
                path=module.display_path,
                line=node.lineno,
                column=node.col_offset + 1,
                importer=module.module,
                imported=target,
                toplevel=not nested,
            ))


def _walk_with_nesting(tree: ast.Module):
    """Yield ``(node, inside_function)`` over the whole tree."""
    stack = [(tree, False)]
    while stack:
        node, nested = stack.pop()
        yield node, nested
        child_nested = nested or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_nested))


def _absolute_import_target(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ImportFrom pulls from."""
    if node.level == 0:
        return node.module or ""
    package_parts = module.module.split(".") if module.module else []
    if not module.is_package_init and package_parts:
        package_parts = package_parts[:-1]
    up = node.level - 1
    if up:
        package_parts = package_parts[: max(0, len(package_parts) - up)]
    if node.module:
        package_parts = package_parts + node.module.split(".")
    return ".".join(package_parts)


# Schema registry ----------------------------------------------------------

def _extract_schema_registry(module: ModuleInfo, index: ProjectIndex) -> None:
    """Parse a top-level ``RECORD_SCHEMAS = {...}`` mapping, if present."""
    for node in module.tree.body:
        target_names = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            target_names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target_names = [node.target.id]
            value = node.value
        if "RECORD_SCHEMAS" not in target_names or not isinstance(
            value, ast.Dict
        ):
            continue
        schemas: Dict[str, Optional[List[str]]] = {}
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue  # computed kind: unindexable, skip gracefully
            schemas[key.value] = _resolve_field_set(val)
        if schemas:
            index.schemas = schemas
            index.schema_module = module.module
        return


def _resolve_field_set(node: ast.AST) -> Optional[List[str]]:
    """Constant string elements of ``frozenset({...})`` / set / list / tuple."""
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is None or callee.split(".")[-1] not in (
            "frozenset", "set", "tuple", "list",
        ):
            return None
        if len(node.args) != 1 or node.keywords:
            return None
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        fields: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                fields.append(elt.value)
            else:
                return None
        return sorted(fields)
    return None


# Call sites, call graph, writes -------------------------------------------

class _ModuleVisitor(ast.NodeVisitor):
    """Single pass over one module collecting fork/emit sites and the
    call-graph facts, tracking scope, loop depth, and default-arg context."""

    def __init__(
        self,
        module: ModuleInfo,
        index: ProjectIndex,
        scheduled: Set[str],
        value_refs: Set[str],
        toplevel_calls: Set[str],
    ):
        self.module = module
        self.index = index
        self.scheduled = scheduled
        self.value_refs = value_refs
        self.toplevel_calls = toplevel_calls
        self.scope: List[str] = []          # class/function name stack
        self.scope_kinds: List[str] = []    # "class" / "func", parallel
        self.function_stack: List[FunctionInfo] = []
        #: Per-function scratch sets finalised into FunctionInfo on exit.
        self._fn_aux: List[Dict[str, Set[str]]] = []
        self.loop_depth = 0
        self.in_default = 0

    # Scope tracking -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.scope_kinds.append("class")
        self.generic_visit(node)
        self.scope_kinds.pop()
        self.scope.pop()

    def _visit_function(self, node) -> None:
        qualname = ".".join(self.scope + [node.name])
        params = [
            a.arg for a in node.args.posonlyargs + node.args.args
        ]
        info = FunctionInfo(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            qualname=qualname,
            name=node.name,
            decorated=bool(node.decorator_list),
            params=params,
        )
        self.index.functions.append(info)
        self._record_batch_pair(node, params)
        # Defaults evaluate in the *enclosing* scope, at def time.
        self.in_default += 1
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        self.in_default -= 1
        for decorator in node.decorator_list:
            self.visit(decorator)
        self.scope.append(node.name)
        self.scope_kinds.append("func")
        self.function_stack.append(info)
        self._fn_aux.append({
            "reads": set(), "stores": set(),
            "floats": set(), "rebound": set(), "bindings": {},
        })
        outer_loop_depth, self.loop_depth = self.loop_depth, 0
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]  # docstrings are not dtype mentions
        for stmt in body:
            self.visit(stmt)
        self.loop_depth = outer_loop_depth
        aux = self._fn_aux.pop()
        info.reads = sorted(
            aux["reads"] - aux["stores"] - set(info.params)
        )
        info.float_names = sorted(aux["floats"])
        info.rebound_params = sorted(aux["rebound"])
        info.call_bindings = dict(sorted(aux["bindings"].items()))
        local_defs = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (
                    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                )):
                    local_defs.add(sub.name)
        info.local_defs = sorted(local_defs)
        info.shape_stmts = _shape_stmt_ir(body)
        self.function_stack.pop()
        self.scope_kinds.pop()
        self.scope.pop()

    def _record_batch_pair(self, node, params: List[str]) -> None:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _simple_call_name(decorator.func) != "batched_pair":
                continue
            serial: Optional[str] = None
            if decorator.args:
                first = decorator.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    serial = first.value
            shapes: Optional[str] = None
            for kw in decorator.keywords:
                if (
                    kw.arg == "shapes"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    shapes = kw.value.value
            class_name = (
                self.scope[-1]
                if self.scope_kinds and self.scope_kinds[-1] == "class"
                else ""
            )
            self.index.batch_pairs.append(BatchPairSite(
                path=self.module.display_path,
                line=decorator.lineno,
                column=decorator.col_offset + 1,
                module=self.module.module,
                class_name=class_name,
                batch_name=node.name,
                serial_name=serial,
                batch_params=list(params),
                shapes=shapes,
            ))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # Loops ----------------------------------------------------------------
    def _visit_loop(self, node) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # Writes ---------------------------------------------------------------
    def _record_write(self, target: ast.AST, node: ast.AST) -> None:
        if self.function_stack:
            desc = _write_target(target)
            if desc is not None:
                self.function_stack[-1].writes.append(AttributeWrite(
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    target=desc,
                ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node)
            self._note_name_binding(target, node)
            self._note_param_subscript(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node)
        if self.function_stack:
            info = self.function_stack[-1]
            target = node.target
            if isinstance(target, ast.Name):
                self._fn_aux[-1]["stores"].add(target.id)
                if self.loop_depth > 0 and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    info.accum_loops.append(AccumSite(
                        line=node.lineno,
                        column=node.col_offset + 1,
                        name=target.id,
                    ))
                if target.id in info.params:
                    info.param_mutations.append(ParamMutation(
                        line=node.lineno,
                        column=node.col_offset + 1,
                        param=target.id,
                        kind="augassign",
                    ))
            else:
                self._note_param_subscript(target, node)
        self.generic_visit(node)

    def _note_name_binding(self, target: ast.AST, node: ast.Assign) -> None:
        """Track float-constant locals and alias-breaking param rebinds."""
        if not self.function_stack or not isinstance(target, ast.Name):
            return
        info = self.function_stack[-1]
        aux = self._fn_aux[-1]
        if isinstance(node.value, ast.Constant) and isinstance(
            node.value.value, float
        ):
            aux["floats"].add(target.id)
        if isinstance(node.value, ast.Call):
            callee = _simple_call_name(node.value.func)
            if callee is not None:
                aux["bindings"][target.id] = callee
        if target.id in info.params and not _alias_preserving_rebind(
            node.value, target.id
        ):
            aux["rebound"].add(target.id)

    def _note_param_subscript(self, target: ast.AST, node: ast.AST) -> None:
        """``param[...] = ...`` / ``param[...] += ...`` slice-assignment."""
        if not self.function_stack:
            return
        info = self.function_stack[-1]
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in info.params
        ):
            info.param_mutations.append(ParamMutation(
                line=node.lineno,
                column=node.col_offset + 1,
                param=target.value.id,
                kind="subscript",
            ))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, node)
        self.generic_visit(node)

    # Calls and value references -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        simple = _simple_call_name(node.func)
        if simple is not None:
            if self.function_stack:
                self.function_stack[-1].calls.append(simple)
            else:
                self.toplevel_calls.add(simple)
            if simple in ("schedule", "schedule_at"):
                self._record_scheduled(node)
            elif simple == "fork":
                self._record_fork(node)
            elif simple == "emit":
                self._record_emit(node)
        self._record_call_mutations(node, simple)
        self._record_pool_or_unordered(node, simple)
        # Function references passed as arguments are callback roots.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._record_value_ref(arg)
        self.generic_visit(node)

    def _record_call_mutations(
        self, node: ast.Call, simple: Optional[str]
    ) -> None:
        """``np.copyto(param, ...)`` and ``out=param`` parameter writes."""
        if not self.function_stack:
            return
        info = self.function_stack[-1]
        if (
            simple == "copyto"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in info.params
        ):
            info.param_mutations.append(ParamMutation(
                line=node.lineno,
                column=node.col_offset + 1,
                param=node.args[0].id,
                kind="copyto",
            ))
        for kw in node.keywords:
            if (
                kw.arg == "out"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in info.params
            ):
                info.param_mutations.append(ParamMutation(
                    line=kw.value.lineno,
                    column=kw.value.col_offset + 1,
                    param=kw.value.id,
                    kind="out",
                ))
        if simple in RNG_CONSTRUCTOR_NAMES:
            info.rng_calls.append(RngCall(
                line=node.lineno,
                column=node.col_offset + 1,
                name=simple,
                seeded=bool(node.args or node.keywords),
            ))
        # String dtype tokens count as mentions only in dtype-bearing
        # positions (``dtype="float32"``, ``astype("float32")``): a bare
        # "float64" in a comparison or table is a *check*, not a
        # provenance source — the V105 inference covers those instead.
        for kw in node.keywords:
            if (
                kw.arg == "dtype"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
                and kw.value.value in DTYPE_TOKENS
            ):
                self._record_dtype(kw.value, kw.value.value)
        if (
            simple == "astype"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value in DTYPE_TOKENS
        ):
            self._record_dtype(node.args[0], node.args[0].value)

    def _record_pool_or_unordered(
        self, node: ast.Call, simple: Optional[str]
    ) -> None:
        function = (
            self.function_stack[-1].qualname if self.function_stack else ""
        )
        if simple in ("as_completed", "imap_unordered"):
            self.index.unordered_sites.append(UnorderedSite(
                path=self.module.display_path,
                line=node.lineno,
                column=node.col_offset + 1,
                module=self.module.module,
                name=simple,
                function=function,
            ))
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in POOL_DISPATCH_METHODS
        ):
            receiver = receiver_key(node.func.value)
            low = (receiver or "").lower()
            if "pool" in low or "executor" in low:
                worker, form = _worker_descriptor(
                    node.args[0] if node.args else None
                )
                payloads = [
                    _payload_descriptor(arg) for arg in node.args[1:]
                ] + [
                    _payload_descriptor(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                ]
                self.index.pool_sites.append(PoolSite(
                    path=self.module.display_path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    module=self.module.module,
                    method=node.func.attr,
                    receiver=receiver,
                    worker=worker,
                    worker_form=form,
                    function=function,
                    payloads=payloads,
                ))
        elif simple == "Process":
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"),
                None,
            )
            if target is None:
                return
            worker, form = _worker_descriptor(target)
            payloads: List[PayloadArg] = []
            for kw in node.keywords:
                if kw.arg not in ("args", "kwargs"):
                    continue
                if isinstance(kw.value, (ast.Tuple, ast.List)):
                    payloads.extend(
                        _payload_descriptor(elt) for elt in kw.value.elts
                    )
                elif isinstance(kw.value, ast.Dict):
                    payloads.extend(
                        _payload_descriptor(v) for v in kw.value.values
                    )
                else:
                    payloads.append(_payload_descriptor(kw.value))
            self.index.pool_sites.append(PoolSite(
                path=self.module.display_path,
                line=node.lineno,
                column=node.col_offset + 1,
                module=self.module.module,
                method="Process",
                receiver=None,
                worker=worker,
                worker_form=form,
                function=function,
                payloads=payloads,
            ))

    def visit_Name(self, node: ast.Name) -> None:
        if self.function_stack:
            aux = self._fn_aux[-1]
            if isinstance(node.ctx, ast.Load):
                aux["reads"].add(node.id)
                if node.id in DTYPE_TOKENS:
                    self._record_dtype(node, node.id)
            else:
                aux["stores"].add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in DTYPE_TOKENS and self.function_stack:
            self._record_dtype(node, node.attr)
        self.generic_visit(node)

    def _record_dtype(self, node: ast.AST, name: str) -> None:
        self.function_stack[-1].dtype_mentions.append(DtypeMention(
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            name=name,
        ))

    def _record_value_ref(self, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            self.value_refs.add(node.attr)
        elif isinstance(node, ast.Name):
            self.value_refs.add(node.id)

    def _record_scheduled(self, node: ast.Call) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                for sub in ast.walk(arg.body):
                    if isinstance(sub, ast.Call):
                        name = _simple_call_name(sub.func)
                        if name is not None:
                            self.scheduled.add(name)
            elif isinstance(arg, ast.Attribute):
                self.scheduled.add(arg.attr)
            elif isinstance(arg, ast.Name):
                self.scheduled.add(arg.id)

    def _record_fork(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        label: Optional[str] = None
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                label = first.value
        self.index.fork_sites.append(ForkSite(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            receiver=receiver_key(node.func.value),
            label=label,
            function=(
                self.function_stack[-1].qualname
                if self.function_stack else ""
            ),
            in_loop=self.loop_depth > 0,
            in_default=self.in_default > 0,
        ))

    def _record_emit(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        kind: Optional[str] = None
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                kind = first.value
        fields = [kw.arg for kw in node.keywords if kw.arg is not None]
        dynamic = (
            any(kw.arg is None for kw in node.keywords)  # **kwargs
            or len(node.args) > 1                        # positional payload
        )
        self.index.emit_sites.append(EmitSite(
            path=self.module.display_path,
            line=node.lineno,
            column=node.col_offset + 1,
            module=self.module.module,
            receiver=receiver_key(node.func.value),
            kind=kind,
            fields=fields,
            dynamic_fields=dynamic,
        ))


def _simple_call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _alias_preserving_rebind(value: ast.AST, name: str) -> bool:
    """True for ``x = np.asarray(x, ...)``-style rebinds that may keep
    ``x`` aliasing the caller's array (mutation findings stay live)."""
    if not isinstance(value, ast.Call):
        return False
    callee = dotted_name(value.func)
    if callee is None or callee.split(".")[-1] not in ALIAS_PRESERVING_CALLS:
        return False
    return bool(
        value.args
        and isinstance(value.args[0], ast.Name)
        and value.args[0].id == name
    )


def _worker_descriptor(node: Optional[ast.AST]):
    """``(simple name, form)`` for a callable handed to a pool."""
    if node is None:
        return None, "missing"
    if isinstance(node, ast.Name):
        return node.id, "name"
    if isinstance(node, ast.Attribute):
        return node.attr, "attribute"
    if isinstance(node, ast.Lambda):
        return None, "lambda"
    return None, "other"


def _write_target(target: ast.AST) -> Optional[str]:
    """Dotted description of an attribute-chain write target, else None."""
    suffix = ""
    if isinstance(target, ast.Subscript):
        suffix = "[]"
        target = target.value
    if not isinstance(target, ast.Attribute):
        return None
    dotted = dotted_name(target)
    if dotted is None:
        return None
    return dotted + suffix


def _payload_descriptor(node: ast.AST) -> PayloadArg:
    """W1 descriptor for one value handed to a pool dispatch."""
    line = getattr(node, "lineno", 1)
    column = getattr(node, "col_offset", 0) + 1
    if isinstance(node, ast.Name):
        return PayloadArg(line, column, "name", name=node.id)
    if isinstance(node, ast.Attribute):
        return PayloadArg(
            line, column, "attribute", name=node.attr,
            chain=dotted_name(node) or receiver_key(node),
        )
    if isinstance(node, ast.Lambda):
        return PayloadArg(line, column, "lambda")
    if isinstance(node, ast.Call):
        return PayloadArg(
            line, column, "call", callee=_simple_call_name(node.func),
        )
    if isinstance(node, ast.Constant):
        return PayloadArg(line, column, "const")
    return PayloadArg(line, column, "other")


# Shape IR -----------------------------------------------------------------
#
# A tiny statement/expression IR — plain dicts with short keys, so the
# whole thing rides in the JSON index cache — that
# :mod:`repro.analysis.shapes` evaluates abstractly.  Everything the
# interpreter cannot use maps to ``{"k": "o"}`` (opaque), which the shape
# domain treats as "unknown — stay silent".

#: Expressions nested deeper than this collapse to opaque; bounds both
#: extraction cost and cache size.
_MAX_EXPR_DEPTH = 8

#: Binary operators worth distinguishing (broadcast semantics are the
#: same for all of them; matmul has its own shape algebra).
_BINOP_NAMES = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.MatMult: "matmul",
}


def _shape_expr_ir(node: ast.AST, depth: int = _MAX_EXPR_DEPTH) -> Dict:
    if depth <= 0:
        return {"k": "o"}
    line = getattr(node, "lineno", 1)
    column = getattr(node, "col_offset", 0) + 1
    if isinstance(node, ast.Name):
        return {"k": "n", "id": node.id}
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool):
            return {"k": "c", "t": "bool"}
        if isinstance(value, int):
            return {"k": "c", "t": "int", "v": value}
        if isinstance(value, float):
            return {"k": "c", "t": "float"}
        if isinstance(value, str):
            return {"k": "c", "t": "str", "v": value}
        if value is None:
            return {"k": "c", "t": "none"}
        return {"k": "c", "t": "o"}
    if isinstance(node, (ast.Tuple, ast.List)):
        return {
            "k": "t",
            "e": [_shape_expr_ir(e, depth - 1) for e in node.elts],
        }
    if isinstance(node, ast.Call):
        fn = _simple_call_name(node.func)
        recv = (
            receiver_key(node.func.value)
            if isinstance(node.func, ast.Attribute) else None
        )
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is not None:
                kwargs[kw.arg] = _shape_expr_ir(kw.value, depth - 1)
        return {
            "k": "call", "fn": fn, "recv": recv,
            "a": [_shape_expr_ir(a, depth - 1) for a in node.args],
            "kw": kwargs, "ln": line, "c": column,
        }
    if isinstance(node, ast.BinOp):
        op = _BINOP_NAMES.get(type(node.op))
        if op is None:
            return {"k": "o"}
        return {
            "k": "b", "op": op,
            "l": _shape_expr_ir(node.left, depth - 1),
            "r": _shape_expr_ir(node.right, depth - 1),
            "ln": line, "c": column,
        }
    if isinstance(node, ast.UnaryOp):
        return {"k": "u", "v": _shape_expr_ir(node.operand, depth - 1)}
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return {"k": "cmp"}
    if isinstance(node, ast.Attribute):
        return {
            "k": "attr", "b": _shape_expr_ir(node.value, depth - 1),
            "at": node.attr, "ln": line, "c": column,
        }
    if isinstance(node, ast.Subscript):
        return {
            "k": "sub", "b": _shape_expr_ir(node.value, depth - 1),
            "i": _shape_index_ir(node.slice, depth - 1),
            "ln": line, "c": column,
        }
    if isinstance(node, ast.IfExp):
        return {
            "k": "ife",
            "b": _shape_expr_ir(node.body, depth - 1),
            "o": _shape_expr_ir(node.orelse, depth - 1),
        }
    if isinstance(node, ast.Starred):
        return {"k": "o"}
    return {"k": "o"}


def _shape_index_ir(node: ast.AST, depth: int) -> Dict:
    """Subscript index descriptor: int / slice / newaxis / tuple / opaque."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return {"k": "i", "v": node.value}
        if node.value is None:
            return {"k": "na"}  # x[None] inserts an axis
        return {"k": "o"}
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
            return {"k": "i", "v": -inner.value}
        return {"k": "o"}
    if isinstance(node, ast.Slice):
        return {"k": "sl"}
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = node.id if isinstance(node, ast.Name) else node.attr
        if name == "newaxis":
            return {"k": "na"}
        return {"k": "o"}
    if isinstance(node, ast.Tuple):
        if depth <= 0:
            return {"k": "o"}
        return {
            "k": "tup",
            "e": [_shape_index_ir(e, depth - 1) for e in node.elts],
        }
    return {"k": "o"}


def _cond_mentions_shape(node: ast.AST) -> bool:
    """True when a branch condition reads ``.shape`` or ``.ndim``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("shape", "ndim"):
            return True
    return False


def _cond_mentions_ndim(node: ast.AST) -> bool:
    """True when a branch condition reads ``.ndim`` — rank dispatch,
    the pattern V104 flags (size logic on ``.shape`` stays exempt)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "ndim":
            return True
    return False


def _raise_only(body: List[ast.stmt]) -> bool:
    """True when a branch body only raises (a validation guard)."""
    return bool(body) and all(isinstance(s, ast.Raise) for s in body)


def _shape_stmt_ir(body: List[ast.stmt]) -> List[Dict]:
    """Statement IR for one function body (nested defs excluded)."""
    out: List[Dict] = []
    for stmt in body:
        line = getattr(stmt, "lineno", 1)
        column = getattr(stmt, "col_offset", 0) + 1
        if isinstance(stmt, (
            ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
        )):
            continue  # nested defs are their own FunctionInfo
        if isinstance(stmt, ast.Assign):
            names = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            if len(stmt.targets) == 1 and names:
                out.append({
                    "s": "assign", "t": names,
                    "e": _shape_expr_ir(stmt.value),
                    "ln": line, "c": column,
                })
            else:
                # Tuple unpacking / attribute targets: kill any plain
                # names so stale shapes never survive an opaque write.
                killed = []
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            killed.append(sub.id)
                out.append({"s": "clear", "t": killed})
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                out.append({
                    "s": "assign", "t": [stmt.target.id],
                    "e": _shape_expr_ir(stmt.value),
                    "ln": line, "c": column,
                })
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and type(
                stmt.op
            ) in _BINOP_NAMES:
                out.append({
                    "s": "assign", "t": [stmt.target.id],
                    "e": {
                        "k": "b", "op": _BINOP_NAMES[type(stmt.op)],
                        "l": {"k": "n", "id": stmt.target.id},
                        "r": _shape_expr_ir(stmt.value),
                        "ln": line, "c": column,
                    },
                    "ln": line, "c": column,
                })
        elif isinstance(stmt, ast.Return):
            out.append({
                "s": "return",
                "e": (
                    _shape_expr_ir(stmt.value)
                    if stmt.value is not None else None
                ),
                "ln": line, "c": column,
            })
        elif isinstance(stmt, ast.If):
            out.append({
                "s": "if",
                "shape_cond": _cond_mentions_shape(stmt.test),
                "ndim_cond": _cond_mentions_ndim(stmt.test),
                "raise_only": _raise_only(stmt.body),
                "body": _shape_stmt_ir(stmt.body),
                "orelse": _shape_stmt_ir(stmt.orelse),
                "ln": line, "c": column,
            })
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            out.append({
                "s": "for",
                "t": (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name) else None
                ),
                "iter": _shape_expr_ir(stmt.iter),
                "body": _shape_stmt_ir(stmt.body + stmt.orelse),
                "ln": line, "c": column,
            })
        elif isinstance(stmt, ast.While):
            out.append({
                "s": "while",
                "body": _shape_stmt_ir(stmt.body + stmt.orelse),
                "ln": line, "c": column,
            })
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            out.extend(_shape_stmt_ir(stmt.body))
        elif isinstance(stmt, ast.Try):
            handler_body: List[ast.stmt] = []
            for handler in stmt.handlers:
                handler_body.extend(handler.body)
            out.append({
                "s": "if",
                "shape_cond": False,
                "raise_only": False,
                "body": _shape_stmt_ir(
                    stmt.body + stmt.orelse + stmt.finalbody
                ),
                "orelse": _shape_stmt_ir(handler_body),
                "ln": line, "c": column,
            })
        elif isinstance(stmt, ast.Expr):
            out.append({
                "s": "expr", "e": _shape_expr_ir(stmt.value),
                "ln": line, "c": column,
            })
    return out


# Cache --------------------------------------------------------------------

def load_or_build_index(
    project: Project,
    cache_path: Optional[Path] = None,
    fingerprint: str = "",
) -> ProjectIndex:
    """Return the index for ``project``, via the on-disk cache if valid.

    The cache is keyed by :func:`project_digest`; any source edit, file
    addition, removal, or (via ``fingerprint``) ``[tool.reprolint]``
    config change alters the digest and forces a rebuild.  Cache IO
    failures (corrupt file, permissions) silently fall back to a
    rebuild — the cache is an optimisation, never a correctness input.
    """
    digest = project_digest(project, fingerprint)
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text(encoding="utf-8"))
            if (
                data.get("version") == INDEX_VERSION
                and data.get("digest") == digest
            ):
                return ProjectIndex.from_dict(data)
        except (ValueError, KeyError, TypeError):
            pass
    index = build_index(project, fingerprint)
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(index.to_dict()) + "\n", encoding="utf-8"
            )
        except OSError:
            pass
    return index
