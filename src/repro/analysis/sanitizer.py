"""Runtime sanitizer: the dynamic twin of the static R1/T1 families.

The static pass proves properties about call sites it can resolve; this
module asserts the same contracts on the *running* program, so the two
agree on one invariant set:

- **Fork-label provenance** (static R101): while active, forking the
  same label twice from the same parent :class:`~repro.utils.rng.RngStream`
  instance raises :class:`SanitizerError` — two live streams would share
  one hierarchical name, making traces unattributable.  A process-wide
  registry of every fork name is kept for auditing.
- **Emit-schema conformance** (static T101/T102): while active, every
  record an enabled :class:`~repro.telemetry.tracer.Tracer` emits is run
  through :func:`repro.telemetry.records.validate_record` before it
  reaches the sink, so schema drift fails at the emitting call site.

Activation is explicit and reversible::

    from repro.analysis.sanitizer import sanitized

    with sanitized():
        run_experiment()

The test suite activates it per-test via an autouse fixture when
``REPRO_SANITIZE=1`` (see ``tests/conftest.py``); CI runs that mode as a
dedicated matrix entry.  Runtime imports (``repro.utils.rng``,
``repro.telemetry``) happen inside :func:`activate`, keeping
``repro.analysis`` import-free of runtime packages for the static path —
the layering rule the L1 family enforces.
"""

from __future__ import annotations

import os
import weakref
from collections import Counter
from typing import List, Optional

__all__ = [
    "SanitizerError",
    "SanitizerState",
    "activate",
    "deactivate",
    "is_active",
    "sanitize_requested",
    "sanitized",
    "state",
]

#: Environment variable that opts the test suite into sanitize mode.
ENV_FLAG = "REPRO_SANITIZE"

#: Attribute used to remember labels already forked from a stream
#: instance; lives on the instance so the registry follows its lifetime.
_FORKED_ATTR = "_sanitizer_forked_labels"


class SanitizerError(AssertionError):
    """A runtime reproducibility contract was violated.

    Derives from :class:`AssertionError` so test frameworks report it as
    a failed invariant rather than an infrastructure error.
    """


class SanitizerState:
    """Bookkeeping for one activation of the sanitizer."""

    def __init__(self) -> None:
        #: Full hierarchical name of every stream forked while active.
        self.fork_names: Counter = Counter()
        #: Records validated while active.
        self.records_validated: int = 0
        #: Collisions/violations raised while active (for reporting).
        self.violations: int = 0
        #: Streams whose per-instance label registry we populated, so
        #: reset() can clear them (weakrefs: never prolong lifetimes).
        self._touched: List[weakref.ref] = []

    def reset(self) -> None:
        self.fork_names.clear()
        self.records_validated = 0
        self.violations = 0
        for ref in self._touched:
            stream = ref()
            if stream is not None and hasattr(stream, _FORKED_ATTR):
                getattr(stream, _FORKED_ATTR).clear()
        self._touched.clear()


#: Process-wide state of the current activation.
state = SanitizerState()

_original_fork = None
_original_emit = None


def sanitize_requested() -> bool:
    """True when the environment opts into sanitize mode."""
    return os.environ.get(ENV_FLAG, "") == "1"


def is_active() -> bool:
    """True while the runtime patches are installed."""
    return _original_fork is not None


def activate() -> None:
    """Install the runtime checks (idempotent)."""
    global _original_fork, _original_emit
    if is_active():
        return

    from repro.telemetry.records import validate_record
    from repro.telemetry.tracer import Tracer
    from repro.utils.rng import RngStream

    state.reset()
    _original_fork = RngStream.fork
    _original_emit = Tracer.emit

    original_fork = _original_fork
    original_emit = _original_emit

    def checked_fork(self, label):
        seen = getattr(self, _FORKED_ATTR, None)
        if seen is None:
            seen = set()
            setattr(self, _FORKED_ATTR, seen)
        if not seen:
            state._touched.append(weakref.ref(self))
        if label in seen:
            state.violations += 1
            raise SanitizerError(
                f"fork-label collision: stream {self.name!r} already "
                f"forked label {label!r}; the second child would share "
                f"the name {self.name!r}/{label!r} — qualify the label "
                "(static rule R101 catches the constant-label cases)"
            )
        seen.add(label)
        child = original_fork(self, label)
        state.fork_names[child.name] += 1
        return child

    def checked_emit(self, kind, **fields):
        if self.enabled:
            record = {"kind": kind, "t": self.now()}
            record.update(fields)
            try:
                validate_record(record)
            except ValueError as exc:
                state.violations += 1
                raise SanitizerError(
                    f"emit-schema violation (static rules T101/T102 "
                    f"catch the constant cases): {exc}"
                ) from exc
            state.records_validated += 1
        return original_emit(self, kind, **fields)

    RngStream.fork = checked_fork
    Tracer.emit = checked_emit


def deactivate() -> None:
    """Remove the runtime checks and forget per-stream registries."""
    global _original_fork, _original_emit
    if not is_active():
        return

    from repro.telemetry.tracer import Tracer
    from repro.utils.rng import RngStream

    RngStream.fork = _original_fork
    Tracer.emit = _original_emit
    _original_fork = None
    _original_emit = None


class sanitized:
    """Context manager scoping one sanitizer activation.

    Entering resets the registry, so each scope (one test, one
    experiment) checks its own invariants; exiting always restores the
    unpatched methods.
    """

    def __enter__(self) -> SanitizerState:
        activate()
        state.reset()
        return state

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        deactivate()
        return None
