"""Runtime sanitizer: the dynamic twin of the static R1/T1 families.

The static pass proves properties about call sites it can resolve; this
module asserts the same contracts on the *running* program, so the two
agree on one invariant set:

- **Fork-label provenance** (static R101): while active, forking the
  same label twice from the same parent :class:`~repro.utils.rng.RngStream`
  instance raises :class:`SanitizerError` — two live streams would share
  one hierarchical name, making traces unattributable.  A process-wide
  registry of every fork name is kept for auditing.
- **Emit-schema conformance** (static T101/T102): while active, every
  record an enabled :class:`~repro.telemetry.tracer.Tracer` emits is run
  through :func:`repro.telemetry.records.validate_record` before it
  reaches the sink, so schema drift fails at the emitting call site.
- **Batch-pair contracts** (static B1/N1): while active, every call
  through a function registered with
  :func:`repro.utils.batchpairs.batched_pair` is routed through a guard
  that (a) rejects mixed float32/float64 array arguments, (b) pins the
  floating dtype of the result per pair — silent promotion between calls
  raises, and (c) hashes every array argument before and after the call,
  so in-place mutation leaking across the registered boundary fails at
  the exact call site the static N103 pass could not prove.
- **Shape contracts** (static V2): the same guard binds the pair's
  declared ``shapes=`` contract against the *observed* call — scalar
  specs bind their symbol to the passed int, array specs bind each
  symbolic axis to the observed extent (a rank-mismatched argument
  simply doesn't bind; the serial-compat paths legitimise 1-D inputs
  via ``atleast_2d``) — and raises when one symbol binds two different
  extents in a single call or, once the batch symbol ``K`` is bound,
  when the result's shape diverges from the declared return.  Observed
  shapes are recorded per pair in :attr:`SanitizerState.pair_shapes`,
  giving the static inference a dynamic twin.

Activation is explicit and reversible::

    from repro.analysis.sanitizer import sanitized

    with sanitized():
        run_experiment()

The test suite activates it per-test via an autouse fixture when
``REPRO_SANITIZE=1`` (see ``tests/conftest.py``); CI runs that mode as a
dedicated matrix entry.  Runtime imports (``repro.utils.rng``,
``repro.telemetry``) happen inside :func:`activate`, keeping
``repro.analysis`` import-free of runtime packages for the static path —
the layering rule the L1 family enforces.
"""

from __future__ import annotations

import os
import weakref
from collections import Counter
from typing import List, Optional

__all__ = [
    "SanitizerError",
    "SanitizerState",
    "activate",
    "deactivate",
    "is_active",
    "sanitize_requested",
    "sanitized",
    "state",
]

#: Environment variable that opts the test suite into sanitize mode.
ENV_FLAG = "REPRO_SANITIZE"

#: Attribute used to remember labels already forked from a stream
#: instance; lives on the instance so the registry follows its lifetime.
_FORKED_ATTR = "_sanitizer_forked_labels"


class SanitizerError(AssertionError):
    """A runtime reproducibility contract was violated.

    Derives from :class:`AssertionError` so test frameworks report it as
    a failed invariant rather than an infrastructure error.
    """


class SanitizerState:
    """Bookkeeping for one activation of the sanitizer."""

    def __init__(self) -> None:
        #: Full hierarchical name of every stream forked while active.
        self.fork_names: Counter = Counter()
        #: Records validated while active.
        self.records_validated: int = 0
        #: Collisions/violations raised while active (for reporting).
        self.violations: int = 0
        #: Guarded batch-pair calls while active, by BatchPair.key.
        self.pair_calls: Counter = Counter()
        #: BatchPair.key -> floating result dtype pinned by the first
        #: guarded call; later drift raises.
        self.pair_dtypes: dict = {}
        #: BatchPair.key -> observed (argument shapes, result shape)
        #: tuples for calls checked against the shapes= contract (capped
        #: per pair; entries are plain tuples/ints/None).
        self.pair_shapes: dict = {}
        #: Streams whose per-instance label registry we populated, so
        #: reset() can clear them (weakrefs: never prolong lifetimes).
        self._touched: List[weakref.ref] = []

    def reset(self) -> None:
        self.fork_names.clear()
        self.records_validated = 0
        self.violations = 0
        self.pair_calls.clear()
        self.pair_dtypes.clear()
        self.pair_shapes.clear()
        for ref in self._touched:
            stream = ref()
            if stream is not None and hasattr(stream, _FORKED_ATTR):
                getattr(stream, _FORKED_ATTR).clear()
        self._touched.clear()


#: Process-wide state of the current activation.
state = SanitizerState()

_original_fork = None
_original_emit = None


def sanitize_requested() -> bool:
    """True when the environment opts into sanitize mode."""
    return os.environ.get(ENV_FLAG, "") == "1"


def is_active() -> bool:
    """True while the runtime patches are installed."""
    return _original_fork is not None


def activate() -> None:
    """Install the runtime checks (idempotent)."""
    global _original_fork, _original_emit
    if is_active():
        return

    import hashlib

    import numpy as np

    from repro.analysis.shapes import (
        BATCH_SYMBOL,
        ContractError,
        parse_contract,
    )
    from repro.telemetry.records import validate_record
    from repro.telemetry.tracer import Tracer
    from repro.utils import batchpairs
    from repro.utils.rng import RngStream

    state.reset()
    _original_fork = RngStream.fork
    _original_emit = Tracer.emit

    original_fork = _original_fork
    original_emit = _original_emit

    def checked_fork(self, label):
        seen = getattr(self, _FORKED_ATTR, None)
        if seen is None:
            seen = set()
            setattr(self, _FORKED_ATTR, seen)
        if not seen:
            state._touched.append(weakref.ref(self))
        if label in seen:
            state.violations += 1
            raise SanitizerError(
                f"fork-label collision: stream {self.name!r} already "
                f"forked label {label!r}; the second child would share "
                f"the name {self.name!r}/{label!r} — qualify the label "
                "(static rule R101 catches the constant-label cases)"
            )
        seen.add(label)
        child = original_fork(self, label)
        state.fork_names[child.name] += 1
        return child

    def checked_emit(self, kind, **fields):
        if self.enabled:
            record = {"kind": kind, "t": self.now()}
            record.update(fields)
            try:
                validate_record(record)
            except ValueError as exc:
                state.violations += 1
                raise SanitizerError(
                    f"emit-schema violation (static rules T101/T102 "
                    f"catch the constant cases): {exc}"
                ) from exc
            state.records_validated += 1
        return original_emit(self, kind, **fields)

    def array_fingerprint(value):
        """(dtype, shape, content hash) for ndarrays; None otherwise."""
        if not isinstance(value, np.ndarray):
            return None
        digest = hashlib.blake2b(
            np.ascontiguousarray(value).tobytes(), digest_size=16
        ).hexdigest()
        return str(value.dtype), value.shape, digest

    # shapes= contracts are static per pair: parse once per activation.
    contracts: dict = {}

    def pair_contract(pair):
        if pair.key not in contracts:
            if pair.shapes is None:
                contracts[pair.key] = None
            else:
                try:
                    contracts[pair.key] = parse_contract(pair.shapes)
                except ContractError:
                    # Malformed contracts are the static V201 rule's
                    # finding; the runtime guard degrades gracefully.
                    contracts[pair.key] = None
        return contracts[pair.key]

    def check_pair_shapes(pair, fn, args, kwargs, result):
        contract = pair_contract(pair)
        if contract is None:
            return
        code = fn.__code__
        names = code.co_varnames[:code.co_argcount]
        offset = 1 if names and names[0] == "self" else 0
        bindings: dict = {}

        def bind(symbol, observed, what):
            prior = bindings.setdefault(symbol, observed)
            if prior != observed:
                state.violations += 1
                raise SanitizerError(
                    f"batch-axis contract violation: "
                    f"{pair.batch_qualname} binds `{symbol}` to both "
                    f"{prior} and {observed} in one call ({what}); "
                    f"declared shapes={pair.shapes!r}"
                )

        observed_args: list = []
        for i, spec in enumerate(contract.params):
            slot = offset + i
            if slot < len(args):
                value = args[slot]
            elif slot < len(names) and names[slot] in kwargs:
                value = kwargs[names[slot]]
            else:
                observed_args.append(None)
                continue
            label = names[slot] if slot < len(names) else f"arg{slot}"
            if (
                spec.kind == "int"
                and isinstance(value, (int, np.integer))
                and not isinstance(value, bool)
            ):
                observed_args.append(int(value))
                bind(spec.symbol, int(value), f"scalar `{label}`")
            elif spec.kind == "array" and isinstance(value, np.ndarray):
                observed_args.append(value.shape)
                if value.ndim != len(spec.dims):
                    # A rank-mismatched argument does not bind: the
                    # serial-compat paths legitimise 1-D inputs via
                    # atleast_2d inside the twin.
                    continue
                for pos, dim in enumerate(spec.dims):
                    if isinstance(dim, str):
                        bind(
                            dim, value.shape[pos],
                            f"axis {pos} of `{label}`",
                        )
                    elif isinstance(dim, int) and value.shape[pos] != dim:
                        state.violations += 1
                        raise SanitizerError(
                            f"shape-contract violation: "
                            f"{pair.batch_qualname} received `{label}` "
                            f"with shape {value.shape} but the contract "
                            f"pins axis {pos} to {dim}; declared "
                            f"shapes={pair.shapes!r}"
                        )
            else:
                observed_args.append(None)
        ret = contract.ret
        if (
            ret is not None
            and ret.kind == "array"
            and BATCH_SYMBOL in bindings
        ):
            if not isinstance(result, np.ndarray) or result.ndim != len(
                ret.dims
            ):
                got = (
                    f"shape {result.shape}"
                    if isinstance(result, np.ndarray)
                    else f"a non-array {type(result).__name__}"
                )
                state.violations += 1
                raise SanitizerError(
                    f"shape-contract violation: {pair.batch_qualname} "
                    f"declared a rank-{len(ret.dims)} batch return but "
                    f"produced {got}; declared shapes={pair.shapes!r}"
                )
            for pos, dim in enumerate(ret.dims):
                if isinstance(dim, str):
                    bind(dim, result.shape[pos], f"axis {pos} of the result")
                elif isinstance(dim, int) and result.shape[pos] != dim:
                    state.violations += 1
                    raise SanitizerError(
                        f"shape-contract violation: "
                        f"{pair.batch_qualname} returned shape "
                        f"{result.shape} but the contract pins result "
                        f"axis {pos} to {dim}; declared "
                        f"shapes={pair.shapes!r}"
                    )
        observed = state.pair_shapes.setdefault(pair.key, [])
        if len(observed) < 32:
            observed.append((
                tuple(observed_args),
                result.shape if isinstance(result, np.ndarray) else None,
            ))

    def batch_pair_guard(pair, fn, args, kwargs):
        arrays = [
            (label, value)
            for label, value in (
                [(f"arg{i}", a) for i, a in enumerate(args)]
                + sorted(kwargs.items())
            )
            if isinstance(value, np.ndarray)
        ]
        float_dtypes = {
            str(a.dtype) for _, a in arrays
            if np.issubdtype(a.dtype, np.floating)
        }
        if len(float_dtypes) > 1:
            state.violations += 1
            raise SanitizerError(
                f"batch-pair dtype mix: {pair.batch_qualname} received "
                f"arrays of {sorted(float_dtypes)}; arithmetic between "
                "them promotes silently (static rule N101 catches the "
                "constant cases) — align the dtypes before the call"
            )
        before = [(label, array_fingerprint(a)) for label, a in arrays]
        result = fn(*args, **kwargs)
        for (label, prior), (_, value) in zip(before, arrays):
            if array_fingerprint(value) != prior:
                state.violations += 1
                raise SanitizerError(
                    f"batch-pair mutation: {pair.batch_qualname} "
                    f"modified array argument `{label}` in place; the "
                    "caller's data changed across the registered "
                    "boundary (static rule N103 catches the provable "
                    "cases) — operate on a copy"
                )
        if isinstance(result, np.ndarray) and np.issubdtype(
            result.dtype, np.floating
        ):
            pinned = state.pair_dtypes.setdefault(
                pair.key, str(result.dtype)
            )
            if str(result.dtype) != pinned:
                state.violations += 1
                raise SanitizerError(
                    f"batch-pair dtype drift: {pair.batch_qualname} "
                    f"returned {result.dtype} after earlier calls "
                    f"returned {pinned}; the serial/batch equivalence "
                    "contract assumes a stable dtype"
                )
        check_pair_shapes(pair, fn, args, kwargs, result)
        state.pair_calls[pair.key] += 1
        return result

    RngStream.fork = checked_fork
    Tracer.emit = checked_emit
    batchpairs.set_runtime_guard(batch_pair_guard)


def deactivate() -> None:
    """Remove the runtime checks and forget per-stream registries."""
    global _original_fork, _original_emit
    if not is_active():
        return

    from repro.telemetry.tracer import Tracer
    from repro.utils import batchpairs
    from repro.utils.rng import RngStream

    RngStream.fork = _original_fork
    Tracer.emit = _original_emit
    batchpairs.clear_runtime_guard()
    _original_fork = None
    _original_emit = None


class sanitized:
    """Context manager scoping one sanitizer activation.

    Entering resets the registry, so each scope (one test, one
    experiment) checks its own invariants; exiting always restores the
    unpatched methods.
    """

    def __enter__(self) -> SanitizerState:
        activate()
        state.reset()
        return state

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        deactivate()
        return None
