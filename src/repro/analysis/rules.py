"""The reprolint rule set.

Four rule families, each tied to a reproduction-fidelity failure mode:

=====  ======================================================================
D1     Ambient nondeterminism: the ``random`` module, global numpy random
       state, and wall-clock reads bypass the seeded ``RngStream``
       discipline and silently decorrelate reruns (D101, D102).
D2     Silent seed fallbacks: constructing an ``RngStream`` from a
       hard-coded ``SeedSequence`` literal couples unrelated components to
       the same stream and hides the real experiment seed (D201).
S1     Simulation-invariant hygiene: exact float equality (S101), mutable
       default arguments (S102), and ``assert``-as-validation (S103) — all
       three change behaviour between environments (``python -O`` strips
       asserts) or between call orders.
A1     API consistency: ``__all__`` entries must resolve (A101),
       re-exported symbols must carry docstrings (A102), and public
       imports in package ``__init__`` files must be exported (A103).
=====  ======================================================================

Each checker yields :class:`~repro.analysis.findings.Finding` objects; the
engine applies inline suppressions and the baseline afterwards.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import (
    ModuleInfo,
    Project,
    dotted_name as _dotted_name,
    top_level_bindings as _top_level_bindings,
)

__all__ = [
    "Checker",
    "AmbientRandomnessChecker",
    "WallClockChecker",
    "SeedFallbackChecker",
    "FloatEqualityChecker",
    "MutableDefaultChecker",
    "AssertChecker",
    "ApiConsistencyChecker",
    "all_checkers",
    "all_rule_ids",
]


class Checker:
    """Base class: one rule family member with a stable id and severity."""

    #: Stable rule identifier (``D101``); referenced by suppressions,
    #: the baseline, and ``[tool.reprolint]`` disable lists.
    rule_id: str = ""
    #: Family prefix (``D1``) used in docs and reports.
    family: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: True when check() resolves names across the whole Project (other
    #: modules' trees).  Such checkers must run in the parent process
    #: under ``--jobs N``; the rest see one module at a time and can be
    #: farmed out to workers with a single-module Project.
    needs_project: bool = False

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            family=self.family,
        )


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> imported dotted module/symbol for a module."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class AmbientRandomnessChecker(Checker):
    """D101: randomness outside :class:`repro.utils.rng.RngStream`."""

    rule_id = "D101"
    family = "D1"
    severity = Severity.ERROR
    description = (
        "ambient randomness (`random` module or global numpy random state) "
        "bypasses the seeded RngStream discipline"
    )

    #: numpy.random attributes that configure seeded generators rather
    #: than draw from global state.
    _ALLOWED_NP_RANDOM = {
        "SeedSequence",
        "default_rng",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        aliases = _import_map(module.tree)
        numpy_aliases = {a for a, t in aliases.items() if t == "numpy"}
        np_random_aliases = {
            a for a, t in aliases.items() if t == "numpy.random"
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node,
                            "import of the stdlib `random` module; draw from "
                            "an explicit repro.utils.rng.RngStream instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "import from the stdlib `random` module; draw from "
                        "an explicit repro.utils.rng.RngStream instead",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in self._ALLOWED_NP_RANDOM:
                            yield self.finding(
                                module, node,
                                f"`from numpy.random import {alias.name}` "
                                "uses global numpy random state; use an "
                                "RngStream generator instead",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                bad = None
                if (
                    len(parts) == 3
                    and parts[0] in numpy_aliases
                    and parts[1] == "random"
                    and parts[2] not in self._ALLOWED_NP_RANDOM
                ):
                    bad = f"{parts[0]}.random.{parts[2]}"
                elif (
                    len(parts) == 2
                    and parts[0] in np_random_aliases
                    and parts[1] not in self._ALLOWED_NP_RANDOM
                ):
                    bad = dotted
                if bad is not None:
                    yield self.finding(
                        module, node,
                        f"`{bad}` draws from global numpy random state; "
                        "use an explicit RngStream (repro.utils.rng) "
                        "forked from the experiment seed",
                    )


class WallClockChecker(Checker):
    """D102: wall-clock reads inside deterministic simulation code."""

    rule_id = "D102"
    family = "D1"
    severity = Severity.ERROR
    description = (
        "wall-clock reads (time.time, datetime.now, ...) make rollouts "
        "irreproducible; simulated time lives on the event loop"
    )

    _TIME_FUNCS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
    _DATETIME_FUNCS = {"now", "utcnow", "today"}

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        aliases = _import_map(module.tree)
        time_aliases = {a for a, t in aliases.items() if t == "time"}
        datetime_like = {
            a
            for a, t in aliases.items()
            if t in ("datetime", "datetime.datetime", "datetime.date")
        }
        clock_funcs = {
            a
            for a, t in aliases.items()
            if t in {f"time.{f}" for f in self._TIME_FUNCS}
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in clock_funcs:
                yield self.finding(
                    module, node,
                    f"wall-clock call `{func.id}()`; simulation code must "
                    "use the event-loop clock (`loop.now`)",
                )
                continue
            dotted = _dotted_name(func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] in time_aliases
                and parts[1] in self._TIME_FUNCS
            ):
                yield self.finding(
                    module, node,
                    f"wall-clock call `{dotted}()`; simulation code must "
                    "use the event-loop clock (`loop.now`)",
                )
            elif (
                len(parts) >= 2
                and parts[0] in datetime_like
                and parts[-1] in self._DATETIME_FUNCS
            ):
                yield self.finding(
                    module, node,
                    f"wall-clock call `{dotted}()`; timestamps in "
                    "deterministic code must come from the simulation "
                    "clock or explicit arguments",
                )


class SeedFallbackChecker(Checker):
    """D201: RngStream built from a hard-coded SeedSequence literal."""

    rule_id = "D201"
    family = "D2"
    severity = Severity.ERROR
    description = (
        "RngStream constructed from a literal SeedSequence seed; callers "
        "must pass a stream forked from the experiment seed (or use "
        "repro.utils.rng.fallback_stream, which warns)"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None or name.split(".")[-1] != "RngStream":
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if not isinstance(arg, ast.Call):
                    continue
                inner = _dotted_name(arg.func)
                if inner is None or inner.split(".")[-1] != "SeedSequence":
                    continue
                seed_args = list(arg.args) + [
                    kw.value for kw in arg.keywords
                ]
                if any(
                    isinstance(a, ast.Constant)
                    and isinstance(a.value, int)
                    and not isinstance(a.value, bool)
                    for a in seed_args
                ):
                    yield self.finding(
                        module, node,
                        "silent seed fallback: RngStream built from a "
                        "literal SeedSequence seed; fork an explicit "
                        "stream from the experiment seed instead",
                    )
                    break


class FloatEqualityChecker(Checker):
    """S101: exact equality against a float literal."""

    rule_id = "S101"
    family = "S1"
    severity = Severity.ERROR
    description = (
        "== / != against a float literal; use "
        "repro.utils.validation.isclose_zero or math.isclose"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                yield self.finding(
                    module, node,
                    "exact float equality is unstable under arithmetic "
                    "noise; use repro.utils.validation.isclose_zero / "
                    "math.isclose",
                )


class MutableDefaultChecker(Checker):
    """S102: mutable default argument values."""

    rule_id = "S102"
    family = "S1"
    severity = Severity.ERROR
    description = (
        "mutable default argument (list/dict/set) is shared across calls; "
        "default to None and construct inside the function"
    )

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in `{node.name}()` is "
                        "shared across calls; default to None instead",
                    )


class AssertChecker(Checker):
    """S103: ``assert`` used for validation in library code."""

    rule_id = "S103"
    family = "S1"
    severity = Severity.ERROR
    description = (
        "asserts vanish under `python -O`; budget/constraint/invariant "
        "checks must use repro.utils.validation (e.g. require())"
    )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module, node,
                    "assert statement in library code is stripped by "
                    "`python -O`; raise via repro.utils.validation "
                    "(require/check_*) instead",
                )


class ApiConsistencyChecker(Checker):
    """A101/A102/A103: ``__all__`` and re-export hygiene in packages.

    This checker owns the whole A1 family and labels each finding with the
    matching sub-rule id instead of a single ``rule_id``.
    """

    rule_id = "A101"
    family = "A1"
    severity = Severity.ERROR
    description = (
        "package __init__ exports must resolve (A101), carry docstrings "
        "(A102) and be listed in __all__ (A103)"
    )
    # Resolves re-export chains through other modules' trees, so it must
    # see the full Project (parent process under --jobs N).
    needs_project = True

    _MAX_CHAIN = 8

    def _finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        rule: str,
        severity: Severity,
        message: str,
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            severity=severity,
            message=message,
            family=self.family,
        )

    def check(self, module: ModuleInfo, project: Project) -> Iterator[Finding]:
        if not module.is_package_init:
            return
        bindings = _top_level_bindings(module.tree)
        all_node, all_names = _parse_all(module.tree)
        if all_node is None:
            return

        for name in all_names:
            if name not in bindings:
                yield self._finding(
                    module, all_node, "A101", Severity.ERROR,
                    f"`{name}` is listed in __all__ but is neither defined "
                    "nor imported in this module",
                )
                continue
            origin = _resolve_export(
                project, module, name, self._MAX_CHAIN
            )
            if origin is None:
                yield self._finding(
                    module, bindings[name], "A101", Severity.ERROR,
                    f"re-export `{name}` does not resolve to a definition "
                    "in its source module",
                )
            else:
                target_module, target_node = origin
                if (
                    isinstance(
                        target_node,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    and ast.get_docstring(target_node) is None
                ):
                    yield self._finding(
                        module, bindings[name], "A102", Severity.WARNING,
                        f"re-exported symbol `{name}` "
                        f"({target_module.module}.{name}) has no docstring",
                    )

        exported = set(all_names)
        for name, node in bindings.items():
            if name.startswith("_") or name in exported:
                continue
            if isinstance(node, (ast.ImportFrom, ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                yield self._finding(
                    module, node, "A103", Severity.WARNING,
                    f"public symbol `{name}` in a package __init__ is not "
                    "listed in __all__; export it or rename with a leading "
                    "underscore",
                )


def _parse_all(
    tree: ast.Module,
) -> Tuple[Optional[ast.AST], List[str]]:
    """Find the ``__all__`` assignment and its string entries."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            names = [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return node, names
        return node, []
    return None, []


def _resolve_import_module(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ImportFrom pulls from."""
    if node.level == 0:
        return node.module or ""
    # Relative import: resolve against this module's package.
    package_parts = module.module.split(".") if module.module else []
    if not module.is_package_init and package_parts:
        package_parts = package_parts[:-1]
    up = node.level - 1
    if up:
        package_parts = package_parts[: len(package_parts) - up]
    if node.module:
        package_parts = package_parts + node.module.split(".")
    return ".".join(package_parts)


def _resolve_export(
    project: Project,
    module: ModuleInfo,
    name: str,
    depth: int,
) -> Optional[Tuple[ModuleInfo, ast.AST]]:
    """Follow ``from x import name`` chains to the defining node.

    Returns ``(module, node)`` at the definition, or ``(module, node)`` at
    the last project-internal hop when the chain leaves the analysed tree
    (external dependency — treated as resolved).  Returns ``None`` when the
    chain dead-ends inside the project.
    """
    current = module
    for _ in range(depth):
        bindings = _top_level_bindings(current.tree)
        node = bindings.get(name)
        if node is None:
            return None
        if not isinstance(node, ast.ImportFrom):
            return current, node
        # Find the original (pre-alias) name for this hop.
        source_name = name
        for alias in node.names:
            if (alias.asname or alias.name) == name:
                source_name = alias.name
                break
        target = _resolve_import_module(current, node)
        target_module = project.resolve_module(target)
        if target_module is None:
            # Maybe `from pkg import submodule` where submodule is a module.
            as_module = project.resolve_module(f"{target}.{source_name}")
            if as_module is not None:
                return as_module, as_module.tree
            # External module: accept the re-export as resolved.
            return current, node
        current = target_module
        name = source_name
    return None


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, report order."""
    return [
        AmbientRandomnessChecker(),
        WallClockChecker(),
        SeedFallbackChecker(),
        FloatEqualityChecker(),
        MutableDefaultChecker(),
        AssertChecker(),
        ApiConsistencyChecker(),
    ]


def all_rule_ids() -> List[str]:
    """Every rule id the engine can emit, for --list-rules and config."""
    return [rule for rule, _, _ in rule_table()]


def rule_table() -> List[Tuple[str, str, str]]:
    """(rule id, family, description) rows for --list-rules output."""
    from repro.analysis.crossrules import project_rule_rows

    rows: List[Tuple[str, str, str]] = []
    for checker in all_checkers():
        if isinstance(checker, ApiConsistencyChecker):
            rows.append(("A101", "A1", "__all__ entry or re-export does not resolve"))
            rows.append(("A102", "A1", "re-exported symbol lacks a docstring"))
            rows.append(("A103", "A1", "public __init__ symbol missing from __all__"))
        else:
            rows.append((checker.rule_id, checker.family, checker.description))
    rows.extend(project_rule_rows())
    rows.append(("P001", "P", "file could not be parsed (syntax error)"))
    rows.append((
        "U101", "U1",
        "inline `# reprolint: disable` comment no longer matches any "
        "finding on its line; drop it so real regressions stay visible",
    ))
    return rows
