"""Finding and severity types shared by every reprolint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Severity", "Finding"]


def _family_of(rule: str) -> str:
    """Family implied by a rule id: ``D101`` -> ``D1``, ``P001`` -> ``P``.

    ``P001`` (parse failure) predates the P1 process-safety family and
    keeps its historic one-letter family.
    """
    if rule == "P001":
        return "P"
    return rule[:2]


class Severity(enum.Enum):
    """How bad a finding is; drives exit-code semantics and display."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location.

    Orders by (path, line, column, rule) so reports are stable across runs
    regardless of checker execution order.
    """

    path: str
    line: int
    column: int
    rule: str = field(compare=True)
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    #: Rule family prefix (``D1``, ``R1``, ...; ``P`` for parse failures).
    #: Not part of identity — the rule id already implies it.
    family: str = field(default="", compare=False)

    def format_text(self) -> str:
        """One-line ``path:line:col: RULE severity: message`` rendering."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "family": self.family or _family_of(self.rule),
            "severity": str(self.severity),
            "message": self.message,
        }
