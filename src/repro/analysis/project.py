"""Parsed-module model: the unit of analysis reprolint rules operate on.

A :class:`Project` is a set of parsed Python modules indexed by dotted
module name, so cross-module rules (the A1 API-consistency family) can
resolve ``from repro.x import y`` re-exports to the definition of ``y``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Shape of a real rule id (``D102``, ``N101``); anything else in a
#: disable comment is treated as prose, not a waiver.
_RULE_ID_RE = re.compile(r"[A-Z]+[0-9]{3}")

__all__ = [
    "ModuleInfo",
    "Project",
    "discover_files",
    "module_name_for",
    "top_level_bindings",
    "dotted_name",
    "receiver_key",
]


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    #: Path as reported in findings (relative to the project root if
    #: possible, keeping reports machine-independent).
    display_path: str
    #: Dotted module name (``repro.sim.consumer``); empty when the file
    #: lies outside any importable package.
    module: str
    source: str
    tree: ast.Module
    #: 1-based line -> set of rule ids suppressed on that line ("all"
    #: suppresses every rule).
    suppressions: Dict[int, frozenset] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def lines(self) -> List[str]:
        return self.source.splitlines()


class Project:
    """All modules under analysis, indexed by dotted name."""

    def __init__(self, modules: Iterable[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {
            m.module: m for m in self.modules if m.module
        }

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Look up a module by dotted name, if it is under analysis."""
        return self.by_name.get(dotted)


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
    # De-duplicate while preserving order (a file given twice, or both a
    # directory and a file inside it).
    seen = set()
    unique = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, derived from package structure.

    Walks up through directories containing ``__init__.py`` files; returns
    an empty string for scripts outside any package.
    """
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    return ".".join(reversed(parts))


def parse_module(
    path: Path, root: Optional[Path] = None
) -> Tuple[Optional[ModuleInfo], Optional[SyntaxError]]:
    """Parse one file; returns ``(module, None)`` or ``(None, error)``."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, exc
    display = str(path)
    if root is not None:
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            pass
    info = ModuleInfo(
        path=path,
        display_path=display,
        module=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=_scan_suppressions(source),
    )
    return info, None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def receiver_key(node: ast.AST) -> Optional[str]:
    """Stable textual key for a call receiver.

    Handles plain Name/Attribute chains (``self._rng``) and one level of
    constant-string subscripting (``self._rngs["collect"]``); anything
    more dynamic keys to None so rules can degrade gracefully.
    """
    direct = dotted_name(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        index = node.slice
        if base is not None and isinstance(index, ast.Constant) and isinstance(
            index.value, str
        ):
            return f'{base}["{index.value}"]'
    return None


def top_level_bindings(tree: ast.Module) -> Dict[str, ast.AST]:
    """Names bound at module top level, mapped to their binding node.

    The module/symbol table of the project index and the A1 re-export
    resolver both build on this.
    """
    bindings: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bindings[name_node.id] = node
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bindings[node.target.id] = node
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bindings[alias.asname or alias.name.split(".")[0]] = node
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = node
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports (version / optional-dependency gates).
            for sub in ast.walk(node):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bindings[alias.asname or alias.name.split(".")[0]] = sub
                elif isinstance(sub, ast.ImportFrom) and sub.module != "__future__":
                    for alias in sub.names:
                        if alias.name != "*":
                            bindings[alias.asname or alias.name] = sub
    return bindings


def _scan_suppressions(source: str) -> Dict[int, frozenset]:
    """Find ``# reprolint: disable=R1,R2`` comments, keyed by line."""
    result: Dict[int, frozenset] = {}
    marker = "reprolint:"
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or marker not in line:
            continue
        comment = line[line.index("#"):]
        idx = comment.find(marker)
        if idx < 0:
            continue
        directive = comment[idx + len(marker):].strip()
        if not directive.startswith("disable="):
            continue
        rules = directive[len("disable="):].split()[0]
        # Only rule-id-shaped tokens (``D102``, ``N101``) or the ``all``
        # wildcard count: prose that merely *mentions* ``disable=R1,R2``
        # (docstrings, this very function) must not register waivers —
        # they would instantly go stale under U101.
        ids = frozenset(
            r.strip() for r in rules.split(",")
            if r.strip() == "all" or _RULE_ID_RE.fullmatch(r.strip())
        )
        if ids:
            result[lineno] = ids
    return result
