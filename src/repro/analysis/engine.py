"""The reprolint engine: discover, parse, index, check, suppress, baseline.

:func:`run_analysis` is the single entry point used by both the module CLI
(``python -m repro.analysis``) and the ``repro lint`` subcommand; tests
call it directly with synthetic trees.

Two checker tiers run over one parse: per-file rules (D/S/A families)
see each module alone, and project rules (R/T/E/L families) consume the
whole-tree :class:`~repro.analysis.index.ProjectIndex`, which is cached
on disk keyed by source hashes when the config enables it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.crossrules import all_project_checkers
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import load_or_build_index
from repro.analysis.project import (
    ModuleInfo,
    Project,
    discover_files,
    parse_module,
)
from repro.analysis.rules import all_checkers

__all__ = ["AnalysisResult", "run_analysis"]


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    #: Findings to report (already suppression- and baseline-filtered).
    findings: List[Finding] = field(default_factory=list)
    #: Findings waived by inline ``# reprolint: disable=`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings waived by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline allowances that no longer match any finding, as
    #: ``(path, rule, unused_count)``.  Stale entries fail the run: a
    #: ratchet that waives fixed violations can hide regressions.
    stale_baseline: List[Tuple[str, str, int]] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when findings or stale baseline entries exist."""
        return 1 if self.findings or self.stale_baseline else 0


def run_analysis(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Analyse ``paths`` (files or directories) and return the result."""
    config = config or LintConfig(root=Path.cwd())
    baseline = baseline or Baseline.empty()
    excludes = [str(config.root / e) for e in config.exclude]
    disabled = set(config.disable)

    files = [
        f
        for f in discover_files([Path(p) for p in paths])
        if not any(str(f.resolve()).startswith(e) for e in excludes)
    ]

    result = AnalysisResult()
    modules: List[ModuleInfo] = []
    raw: List[Finding] = []
    for path in files:
        module, error = parse_module(path, root=config.root)
        result.checked_files += 1
        if error is not None:
            raw.append(
                Finding(
                    path=_display(path, config.root),
                    line=error.lineno or 1,
                    column=(error.offset or 0) or 1,
                    rule="P001",
                    severity=Severity.ERROR,
                    message=f"syntax error: {error.msg}",
                    family="P",
                )
            )
            continue
        modules.append(module)

    project = Project(modules)
    checkers = all_checkers()
    for module in modules:
        for checker in checkers:
            for finding in checker.check(module, project):
                raw.append(finding)

    index = load_or_build_index(project, cache_path=config.cache_path())
    for project_checker in all_project_checkers():
        for finding in project_checker.check(index, config):
            raw.append(finding)

    filtered: List[Finding] = []
    for finding in raw:
        if finding.rule in disabled:
            continue
        module = _module_for(modules, finding.path)
        if module is not None and _is_suppressed(module, finding):
            result.suppressed.append(finding)
        else:
            filtered.append(finding)

    reported, waived = baseline.apply(filtered)
    result.findings = sorted(reported)
    result.baselined = waived
    result.stale_baseline = baseline.stale_entries(filtered)
    result.suppressed.sort()
    return result


def _display(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def _module_for(
    modules: Sequence[ModuleInfo], display_path: str
) -> Optional[ModuleInfo]:
    for module in modules:
        if module.display_path == display_path:
            return module
    return None


def _is_suppressed(module: ModuleInfo, finding: Finding) -> bool:
    ids = module.suppressions.get(finding.line)
    if ids is None:
        return False
    return finding.rule in ids or "all" in ids
