"""The reprolint engine: discover, parse, index, check, suppress, baseline.

:func:`run_analysis` is the single entry point used by both the module CLI
(``python -m repro.analysis``) and the ``repro lint`` subcommand; tests
call it directly with synthetic trees.

Two checker tiers run over one parse: per-file rules (D/S/A families)
see each module alone, and project rules (R/T/E/L/N/P/B families)
consume the whole-tree :class:`~repro.analysis.index.ProjectIndex`,
which is cached on disk keyed by source hashes *and* the config
fingerprint when the config enables it.

``jobs > 1`` fans the parse + per-file-checker stage out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The split follows the
``needs_project`` attribute: checkers that resolve names across modules
(A1) stay in the parent, the rest run in workers against a single-module
Project — the two paths produce byte-identical findings, and results
merge in input order (``executor.map``), so ``--jobs`` can never reorder
a report.  The worker is a module-level function that takes only plain
strings and derives everything else locally: exactly the discipline the
P1 family enforces on the rest of the repository.

After suppression filtering the engine replays every inline
``# reprolint: disable`` comment against the *raw* finding set: a
comment that waives nothing real anymore is reported as U101, the
inline twin of the stale-baseline failure.  U101 findings are exempt
from inline suppression (a stale ``disable=all`` must not hide its own
staleness) but honour ``disable`` config and the baseline like any
other rule.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig
from repro.analysis.crossrules import all_project_checkers
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import load_or_build_index
from repro.analysis.project import (
    ModuleInfo,
    Project,
    discover_files,
    parse_module,
)
from repro.analysis.rules import all_checkers

__all__ = ["AnalysisResult", "run_analysis"]


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    #: Findings to report (already suppression- and baseline-filtered).
    findings: List[Finding] = field(default_factory=list)
    #: Findings waived by inline ``# reprolint: disable=`` comments.
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings waived by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline allowances that no longer match any finding, as
    #: ``(path, rule, unused_count)``.  Stale entries fail the run: a
    #: ratchet that waives fixed violations can hide regressions.
    stale_baseline: List[Tuple[str, str, int]] = field(default_factory=list)
    checked_files: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when findings or stale baseline entries exist."""
        return 1 if self.findings or self.stale_baseline else 0


def _analyse_file(path_str: str, root_str: str):
    """Parse one file and run the per-file checkers that do not need the
    whole project.

    Module-level, arguments are plain strings, no module globals read,
    no RNG: the shape the P1 family demands of pool workers — this
    function is linted by the rules it helps enforce.  Returns
    ``(module_info_or_None, local findings, parse-error finding_or_None)``.
    """
    path = Path(path_str)
    root = Path(root_str)
    module, error = parse_module(path, root=root)
    if error is not None:
        return None, [], _syntax_finding(path, root, error)
    project = Project([module])
    findings: List[Finding] = []
    for checker in all_checkers():
        if checker.needs_project:
            continue
        findings.extend(checker.check(module, project))
    return module, findings, None


def _syntax_finding(path: Path, root: Path, error: SyntaxError) -> Finding:
    return Finding(
        path=_display(path, root),
        line=error.lineno or 1,
        column=(error.offset or 0) or 1,
        rule="P001",
        severity=Severity.ERROR,
        message=f"syntax error: {error.msg}",
        family="P",
    )


def run_analysis(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    jobs: int = 1,
) -> AnalysisResult:
    """Analyse ``paths`` (files or directories) and return the result.

    ``jobs > 1`` parallelises parsing and single-module checking over a
    process pool; findings are merged in input order and are identical
    to a serial run.
    """
    config = config or LintConfig(root=Path.cwd())
    baseline = baseline or Baseline.empty()
    excludes = [str(config.root / e) for e in config.exclude]
    disabled = set(config.disable)

    files = [
        f
        for f in discover_files([Path(p) for p in paths])
        if not any(str(f.resolve()).startswith(e) for e in excludes)
    ]

    result = AnalysisResult()
    modules: List[ModuleInfo] = []
    raw: List[Finding] = []

    root_str = str(config.root)
    if jobs > 1 and len(files) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            # map() yields in input order regardless of completion order,
            # so parallel runs report identically to serial ones (P104).
            per_file = list(executor.map(
                _analyse_file,
                [str(f) for f in files],
                [root_str] * len(files),
            ))
    else:
        per_file = [_analyse_file(str(f), root_str) for f in files]

    for module, local_findings, error_finding in per_file:
        result.checked_files += 1
        if error_finding is not None:
            raw.append(error_finding)
            continue
        modules.append(module)
        raw.extend(local_findings)

    project = Project(modules)
    for checker in all_checkers():
        if not checker.needs_project:
            continue
        for module in modules:
            raw.extend(checker.check(module, project))

    index = load_or_build_index(
        project,
        cache_path=config.cache_path(),
        fingerprint=config.fingerprint(),
    )
    for project_checker in all_project_checkers():
        raw.extend(project_checker.check(index, config))

    filtered: List[Finding] = []
    for finding in raw:
        if finding.rule in disabled:
            continue
        module = _module_for(modules, finding.path)
        if module is not None and _is_suppressed(module, finding):
            result.suppressed.append(finding)
        else:
            filtered.append(finding)

    # U101 is matched against the raw set: a suppression stays live as
    # long as its finding *would* fire, even while globally disabled.
    for finding in _stale_suppressions(modules, raw):
        if finding.rule not in disabled:
            filtered.append(finding)

    reported, waived = baseline.apply(filtered)
    result.findings = sorted(reported)
    result.baselined = waived
    result.stale_baseline = baseline.stale_entries(filtered)
    result.suppressed.sort()
    return result


def _stale_suppressions(
    modules: Sequence[ModuleInfo], raw: Sequence[Finding]
) -> List[Finding]:
    """U101: inline disable comments that waive nothing anymore."""
    fired: Dict[Tuple[str, int], Set[str]] = {}
    for finding in raw:
        fired.setdefault((finding.path, finding.line), set()).add(
            finding.rule
        )
    findings: List[Finding] = []
    for module in modules:
        lines = module.lines()
        for lineno, ids in sorted(module.suppressions.items()):
            rules_here = fired.get((module.display_path, lineno), set())
            line_text = lines[lineno - 1] if lineno <= len(lines) else ""
            column = line_text.find("#") + 1 if "#" in line_text else 1
            for rule_id in sorted(ids):
                if rule_id == "all":
                    stale = not rules_here
                    detail = "no finding of any rule"
                else:
                    stale = rule_id not in rules_here
                    detail = f"no {rule_id} finding"
                if not stale:
                    continue
                findings.append(Finding(
                    path=module.display_path,
                    line=lineno,
                    column=column,
                    rule="U101",
                    severity=Severity.ERROR,
                    message=(
                        f"stale suppression: {detail} fires on this "
                        "line anymore; drop the comment — like a stale "
                        "baseline entry, a dead waiver can hide the "
                        "next real regression"
                    ),
                    family="U1",
                ))
    return findings


def _display(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def _module_for(
    modules: Sequence[ModuleInfo], display_path: str
) -> Optional[ModuleInfo]:
    for module in modules:
        if module.display_path == display_path:
            return module
    return None


def _is_suppressed(module: ModuleInfo, finding: Finding) -> bool:
    ids = module.suppressions.get(finding.line)
    if ids is None:
        return False
    return finding.rule in ids or "all" in ids
