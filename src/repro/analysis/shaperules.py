"""Shape, batch-axis, and worker-payload rule families.

Three project-level families built on :mod:`repro.analysis.shapes`:

=====  ======================================================================
V1     Shape discipline on the hot-path call closure: provable broadcast
       mismatches (V101), rank violations feeding fixed-rank consumers
       such as matmul (V102), axis keywords outside the inferred rank
       (V103), shape-dependent branching on hot paths (V104 — dispatch
       per call defeats vectorisation; validation guards that only
       raise are exempt), and inferred float32/float64 promotion (V105,
       the dataflow upgrade of mention-based N101).
V2     Batch-axis contracts: every ``@batched_pair`` twin must declare a
       ``shapes=`` contract (V201) that binds the leading batch symbol
       ``K`` in its inputs and carries it to the return (V202), must not
       be contradicted by the abstract interpreter (V203), and must stay
       provably shape-safe when ``K`` collapses to 1 (V204) — upgrading
       the B family from signature alignment to dataflow proof.
W1     Worker payloads: every value shipped into a pool dispatch
       (``executor.submit/map``, ``Process(target=...)``) must be
       picklable in the worker — no lambdas or locally-defined
       callables (W101), no open handles or live RNG generators (W102),
       and no tracer/sink references (W103), which would either fail to
       serialise or silently fork buffered state into the child.
=====  ======================================================================

Like every project family, these consume only plain index data (plus
the pure-Python shape interpreter), so findings are identical from a
fresh extraction, the on-disk cache, and any ``--jobs`` setting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.crossrules import ProjectChecker
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import FunctionInfo, PayloadArg, PoolSite, ProjectIndex
from repro.analysis.shapes import (
    BATCH_SYMBOL,
    batch_contract_report,
    hotpath_events,
)

__all__ = [
    "ShapeDisciplineChecker",
    "BatchAxisChecker",
    "WorkerPayloadChecker",
]

#: ShapeEvent.kind -> (rule id, severity) for the inference-driven rules.
_EVENT_RULES = {
    "broadcast": ("V101", Severity.ERROR),
    "rank": ("V102", Severity.ERROR),
    "axis": ("V103", Severity.ERROR),
    "promote": ("V105", Severity.WARNING),
}


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(p in ("tests", "test") for p in parts) or (
        bool(parts) and parts[-1].startswith("test_")
    )


class ShapeDisciplineChecker(ProjectChecker):
    """V1: provable shape/dtype contradictions on the hot paths."""

    family = "V1"
    rules = [
        (
            "V101",
            "arithmetic on arrays whose inferred shapes provably cannot "
            "broadcast",
        ),
        (
            "V102",
            "rank-changing operation feeds a fixed-rank consumer "
            "(matmul/dot operand of provably wrong rank)",
        ),
        (
            "V103",
            "axis keyword is provably outside the operand's inferred rank",
        ),
        (
            "V104",
            "rank dispatch (`.ndim` in a branch condition) on a hot-path "
            "function; per-call rank polymorphism defeats vectorisation "
            "(raise-only validation guards and `.shape` size logic are "
            "exempt)",
        ),
        (
            "V105",
            "inferred float32 array meets a float64 array; the result "
            "silently promotes (dataflow upgrade of mention-based N101)",
        ),
    ]

    def check(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        roots = set(config.hotpath_roots)
        for event in hotpath_events(index, sorted(roots)):
            rule, severity = _EVENT_RULES[event.kind]
            yield self.finding(
                rule, event.path, event.line, event.column,
                f"in `{event.function}`: {event.message}",
                severity=severity,
            )
        yield from self._check_shape_branching(index, roots)

    def _check_shape_branching(
        self, index: ProjectIndex, roots: set
    ) -> Iterator[Finding]:
        by_name: Dict[str, List[FunctionInfo]] = {}
        for func in index.functions:
            by_name.setdefault(func.name, []).append(func)
        reachable: set = set()
        frontier = [n for n in sorted(roots) if n in by_name]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            for func in by_name[name]:
                for callee in func.calls:
                    if callee not in reachable and callee in by_name:
                        frontier.append(callee)
        for func in sorted(index.functions, key=lambda f: (f.path, f.line)):
            if func.name not in reachable or _is_test_path(func.path):
                continue
            for line, column in _shape_branches(func.shape_stmts):
                yield self.finding(
                    "V104", func.path, line, column,
                    f"`{func.qualname}` is reachable from the hot-path "
                    f"roots and branches on `.ndim`; per-call rank "
                    f"dispatch defeats vectorisation — give each rank "
                    f"its own entrypoint or make the guard raise-only",
                    severity=Severity.WARNING,
                )


def _shape_branches(stmts: List[Dict]) -> Iterator[Tuple[int, int]]:
    for stmt in stmts:
        if stmt["s"] == "if":
            if stmt.get("ndim_cond") and not stmt.get("raise_only"):
                yield stmt.get("ln", 1), stmt.get("c", 1)
            yield from _shape_branches(stmt.get("body", []))
            yield from _shape_branches(stmt.get("orelse", []))
        elif stmt["s"] in ("for", "while"):
            yield from _shape_branches(stmt.get("body", []))


class BatchAxisChecker(ProjectChecker):
    """V2: dataflow-proven leading-batch-axis contracts per pair."""

    family = "V2"
    rules = [
        (
            "V201",
            "@batched_pair twin lacks a parseable shapes= contract",
        ),
        (
            "V202",
            "shapes= contract does not bind the leading batch symbol K "
            "in its inputs, or its array return does not carry K as the "
            "leading axis",
        ),
        (
            "V203",
            "abstract interpretation of the batch twin contradicts its "
            "declared shapes= contract",
        ),
        (
            "V204",
            "collapsing the batch axis to K=1 makes the twin provably "
            "shape-unsafe",
        ),
    ]

    def check(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        for report in batch_contract_report(index):
            site = report.site
            where = (site.path, site.line, site.column)
            if site.shapes is None:
                yield self.finding(
                    "V201", *where,
                    f"@batched_pair on `{site.batch_name}` declares no "
                    f"shapes= contract; the leading-batch-axis proof "
                    f"needs one (e.g. shapes=\"(K, state_dim) -> (K,)\")",
                )
                continue
            if report.parse_error is not None:
                yield self.finding(
                    "V201", *where,
                    f"shapes= contract on `{site.batch_name}` does not "
                    f"parse: {report.parse_error}",
                )
                continue
            contract = report.contract
            if not contract.binds_batch_axis:
                yield self.finding(
                    "V202", *where,
                    f"shapes= contract on `{site.batch_name}` never "
                    f"binds the batch symbol `{BATCH_SYMBOL}` in its "
                    f"inputs; the batch axis cannot be traced end-to-end",
                )
            elif not contract.returns_batch_axis:
                yield self.finding(
                    "V202", *where,
                    f"shapes= contract on `{site.batch_name}` declares "
                    f"an array return whose leading axis is not "
                    f"`{BATCH_SYMBOL}`; the batch axis must be carried "
                    f"to the return (or the return marked `_`)",
                )
            if report.contradiction is not None:
                yield self.finding(
                    "V203", *where,
                    f"on `{site.batch_name}`: {report.contradiction}",
                )
            for event in report.k1_events:
                yield self.finding(
                    "V204", event.path, event.line, event.column,
                    f"`{site.batch_name}` with K=1: {event.message}",
                )


#: Callees whose results must not cross a process boundary (W102).
_UNPICKLABLE_CALLS = frozenset([
    "open", "default_rng", "RandomState", "Generator", "fork",
    "fallback_stream",
])

#: Constructors/attributes that mark tracer or sink objects (W103).
_TRACER_CALLS = frozenset([
    "Tracer", "JsonlSink", "MemorySink", "MetricsSink", "NullSink",
])
_TRACER_ATTRS = ("tracer", "sink")


class WorkerPayloadChecker(ProjectChecker):
    """W1: everything shipped to a pool worker must be picklable."""

    family = "W1"
    rules = [
        (
            "W101",
            "lambda or locally-defined callable shipped as a worker "
            "payload; pickling it in the child always fails",
        ),
        (
            "W102",
            "open handle or live RNG generator shipped as a worker "
            "payload; handles don't serialise and generators silently "
            "duplicate their state into the child",
        ),
        (
            "W103",
            "tracer or sink reference shipped as a worker payload; "
            "buffered telemetry state forks into the child and the "
            "parent's records silently diverge",
        ),
    ]

    def check(
        self, index: ProjectIndex, config: LintConfig
    ) -> Iterator[Finding]:
        functions = {
            (f.module, f.qualname): f for f in index.functions
        }
        for site in sorted(
            index.pool_sites, key=lambda s: (s.path, s.line, s.column)
        ):
            scope = functions.get((site.module, site.function))
            for payload in site.payloads:
                yield from self._check_payload(site, payload, scope)

    def _check_payload(
        self,
        site: PoolSite,
        payload: PayloadArg,
        scope: Optional[FunctionInfo],
    ) -> Iterator[Finding]:
        where = (site.path, payload.line, payload.column)
        if payload.form == "lambda":
            yield self.finding(
                "W101", *where,
                f"lambda shipped into `{site.method}`; lambdas cannot "
                f"be pickled across the process boundary",
            )
            return
        if payload.form == "name" and scope is not None:
            if payload.name in scope.local_defs:
                yield self.finding(
                    "W101", *where,
                    f"`{payload.name}` is defined inside "
                    f"`{scope.qualname}` and shipped into "
                    f"`{site.method}`; locally-defined callables cannot "
                    f"be pickled — move it to module level",
                )
                return
            bound_to = scope.call_bindings.get(payload.name)
            if bound_to in _UNPICKLABLE_CALLS:
                yield self.finding(
                    "W102", *where,
                    f"`{payload.name}` holds the result of "
                    f"`{bound_to}(...)` and is shipped into "
                    f"`{site.method}`; pass plain data (a path, a seed) "
                    f"and reconstruct in the worker",
                )
                return
            if bound_to in _TRACER_CALLS:
                yield self.finding(
                    "W103", *where,
                    f"`{payload.name}` holds a `{bound_to}` and is "
                    f"shipped into `{site.method}`; telemetry objects "
                    f"must stay in the parent — workers should return "
                    f"records, not carry sinks",
                )
                return
        if payload.form == "call":
            if payload.callee in _UNPICKLABLE_CALLS:
                yield self.finding(
                    "W102", *where,
                    f"`{payload.callee}(...)` result shipped directly "
                    f"into `{site.method}`; pass plain data and "
                    f"reconstruct in the worker",
                )
                return
            if payload.callee in _TRACER_CALLS:
                yield self.finding(
                    "W103", *where,
                    f"`{payload.callee}(...)` shipped directly into "
                    f"`{site.method}`; telemetry objects must stay in "
                    f"the parent",
                )
                return
        if payload.form == "attribute" and payload.chain is not None:
            last = payload.chain.split(".")[-1].lstrip("_")
            if any(mark in last.lower() for mark in _TRACER_ATTRS):
                yield self.finding(
                    "W103", *where,
                    f"`{payload.chain}` looks like a tracer/sink "
                    f"reference shipped into `{site.method}`; workers "
                    f"must not carry telemetry objects",
                )
