"""Symbolic array shape/dtype inference over the project index.

An abstract interpreter for the per-function shape IR recorded by
:mod:`repro.analysis.index` (``FunctionInfo.shape_stmts``).  Values live
in a small domain:

=========  ==============================================================
array      known-rank ndarray with per-dimension entries that are a
           concrete ``int``, a symbol (``"K"``, ``"state_dim"``) bound by
           an entrypoint contract, or ``None`` (unknown length)
int        a Python integer — concrete value or a contract symbol
num        a non-integer numeric scalar (dtype tracked when strong)
tuple      a fixed-length tuple of abstract values (``x.shape``)
str        a string constant (dtype arguments)
none       the ``None`` constant
unknown    everything else — the absorbing element
=========  ==============================================================

Inference is deliberately *conservative*: every operation the
interpreter does not model, every name it cannot resolve, and every
dimension it cannot prove maps to unknown, and unknown never produces a
finding.  Rules fire only on contradictions that hold for **every**
concrete execution (two concrete, unequal, non-1 dimensions under a
broadcast; an integer axis outside a known rank; a float32 array meeting
a float64 array), so an empty finding list on ``src/repro`` stays
meaningful.

Interprocedural reasoning follows *name-level* call edges, the same
resolution the R/E/N families use: a call is inlined only when the
simple callee name maps to exactly one function in the index, with a
recursion guard and a depth budget.  Entry seeding comes from
``@batched_pair(shapes=...)`` contracts (:func:`parse_contract`) and a
shape-spec table for numpy builtins (:data:`NUMPY_SPECS`).

Everything here consumes plain index data, so results are identical
from a fresh extraction or the on-disk cache, and identical across
``--jobs`` settings (project checkers always run in the parent).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.index import BatchPairSite, FunctionInfo, ProjectIndex

__all__ = [
    "ShapeVal",
    "UNKNOWN",
    "BATCH_SYMBOL",
    "Contract",
    "ContractError",
    "ParamSpec",
    "parse_contract",
    "ShapeEvent",
    "ShapeEngine",
    "PairReport",
    "batch_contract_report",
    "NUMPY_SPECS",
]

#: The canonical leading-batch-axis symbol in ``shapes=`` contracts.
BATCH_SYMBOL = "K"

#: Dimension entries: a concrete int, a symbol name, or None (unknown).
Dim = object

#: Interprocedural inlining budget — call chains deeper than this
#: evaluate to unknown rather than exploding.
_MAX_CALL_DEPTH = 4


# Value domain --------------------------------------------------------------

@dataclass(frozen=True)
class ShapeVal:
    """One abstract value.  Immutable so environments can share them."""

    kind: str  # array | int | num | tuple | str | none | unknown
    dims: Optional[Tuple[Dim, ...]] = None
    #: Element dtype ("float32", ...); None when unknown.  For ``num``
    #: scalars a non-None dtype marks a *strong* numpy scalar — weak
    #: Python floats never drive promotion findings.
    dtype: Optional[str] = None
    #: Concrete value for int/str; a symbol name for symbolic ints.
    value: object = None
    elts: Optional[Tuple["ShapeVal", ...]] = None

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def rank(self) -> Optional[int]:
        return len(self.dims) if self.kind == "array" else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "array":
            inner = ", ".join(
                "?" if d is None else str(d) for d in self.dims
            )
            suffix = f" {self.dtype}" if self.dtype else ""
            return f"<array ({inner}){suffix}>"
        if self.kind in ("int", "str"):
            return f"<{self.kind} {self.value}>"
        return f"<{self.kind}>"


UNKNOWN = ShapeVal("unknown")
NONE = ShapeVal("none")


def array_of(dims: Sequence[Dim], dtype: Optional[str] = None) -> ShapeVal:
    return ShapeVal("array", dims=tuple(dims), dtype=dtype)


def int_of(value: object) -> ShapeVal:
    return ShapeVal("int", value=value)


def join_vals(a: ShapeVal, b: ShapeVal) -> ShapeVal:
    """Least upper bound of two abstract values (branch merge)."""
    if a == b:
        return a
    if a.kind == "array" and b.kind == "array" and len(a.dims) == len(b.dims):
        dims = tuple(
            da if da == db else None for da, db in zip(a.dims, b.dims)
        )
        dtype = a.dtype if a.dtype == b.dtype else None
        return array_of(dims, dtype)
    if a.kind == b.kind == "int":
        return ShapeVal("int")
    if a.kind == b.kind:
        return ShapeVal(a.kind) if a.kind in ("num", "str") else UNKNOWN
    return UNKNOWN


# Dimension algebra ---------------------------------------------------------

def _dims_definitely_unequal(a: Dim, b: Dim) -> bool:
    """Provable inequality: two concrete ints that differ."""
    return (
        isinstance(a, int) and isinstance(b, int) and a != b
    )


def broadcast_dims(
    a: Tuple[Dim, ...], b: Tuple[Dim, ...]
) -> Tuple[Optional[Tuple[Dim, ...]], bool]:
    """Numpy broadcasting; returns ``(result_dims, provable_error)``.

    The error flag is set only when some aligned pair is two concrete,
    unequal integers with neither equal to 1 — the mismatch every
    concrete execution would raise on.
    """
    out: List[Dim] = []
    ra, rb = len(a), len(b)
    for i in range(max(ra, rb)):
        da = a[ra - 1 - i] if i < ra else 1
        db = b[rb - 1 - i] if i < rb else 1
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da == db and da is not None:
            out.append(da)
        elif _dims_definitely_unequal(da, db):
            return None, True
        else:
            # Symbol vs int, symbol vs other symbol, or unknown: the
            # run *may* be fine, so the result length is unknown.
            out.append(da if da == db else None)
    out.reverse()
    return tuple(out), False


# Contracts -----------------------------------------------------------------

class ContractError(ValueError):
    """A ``shapes=`` contract string that does not parse."""


@dataclass(frozen=True)
class ParamSpec:
    """One parameter (or the return) of a ``shapes=`` contract."""

    kind: str  # array | int | any | scalar
    dims: Tuple[Dim, ...] = ()
    symbol: Optional[str] = None

    def seed(self) -> ShapeVal:
        """Abstract value this spec contributes to the entry environment."""
        if self.kind == "array":
            return array_of(self.dims)
        if self.kind == "int":
            return int_of(self.symbol)
        if self.kind == "scalar":
            return ShapeVal("num")
        return UNKNOWN


@dataclass(frozen=True)
class Contract:
    """A parsed ``shapes="(K, state_dim), _ -> (K,)"`` declaration.

    Parameter specs cover the batch function's positional parameters
    after ``self`` (for methods).  ``_`` leaves a parameter or the
    return unchecked; a bare identifier binds a scalar int symbol;
    ``()`` is a non-array scalar.
    """

    params: Tuple[ParamSpec, ...]
    ret: Optional[ParamSpec]

    @property
    def binds_batch_axis(self) -> bool:
        """Does some input bind the leading batch symbol ``K``?"""
        for spec in self.params:
            if spec.kind == "int" and spec.symbol == BATCH_SYMBOL:
                return True
            if spec.kind == "array" and BATCH_SYMBOL in spec.dims:
                return True
        return False

    @property
    def returns_batch_axis(self) -> bool:
        """Is the return unchecked, scalar, or leading-``K``?"""
        if self.ret is None or self.ret.kind in ("any", "scalar", "int"):
            return True
        return bool(self.ret.dims) and self.ret.dims[0] == BATCH_SYMBOL


def _tokenize_contract(spec: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(spec):
        ch = spec[i]
        if ch.isspace():
            i += 1
        elif ch in "(),":
            tokens.append(ch)
            i += 1
        elif spec.startswith("->", i):
            tokens.append("->")
            i += 2
        elif ch.isalpha() or ch == "_":
            j = i
            while j < len(spec) and (spec[j].isalnum() or spec[j] == "_"):
                j += 1
            tokens.append(spec[i:j])
            i = j
        elif ch.isdigit():
            j = i
            while j < len(spec) and spec[j].isdigit():
                j += 1
            tokens.append(spec[i:j])
            i = j
        else:
            raise ContractError(f"unexpected character {ch!r} in {spec!r}")
    return tokens


def _parse_item(tokens: List[str], pos: int) -> Tuple[ParamSpec, int]:
    tok = tokens[pos] if pos < len(tokens) else None
    if tok == "(":
        dims: List[Dim] = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            t = tokens[pos]
            if t == ",":
                pos += 1
                continue
            if t.isdigit():
                dims.append(int(t))
            elif t == "_":
                dims.append(None)
            elif t.isidentifier():
                dims.append(t)
            else:
                raise ContractError(f"bad dimension token {t!r}")
            pos += 1
        if pos >= len(tokens):
            raise ContractError("unclosed '(' in shapes contract")
        pos += 1  # consume ')'
        if not dims:
            return ParamSpec("scalar"), pos
        return ParamSpec("array", dims=tuple(dims)), pos
    if tok == "_":
        return ParamSpec("any"), pos + 1
    if tok is not None and tok.isidentifier():
        return ParamSpec("int", symbol=tok), pos + 1
    raise ContractError(f"expected a parameter spec, got {tok!r}")


def parse_contract(spec: str) -> Contract:
    """Parse a ``shapes=`` contract string (raises :class:`ContractError`)."""
    tokens = _tokenize_contract(spec)
    if not tokens:
        raise ContractError("empty shapes contract")
    params: List[ParamSpec] = []
    ret: Optional[ParamSpec] = None
    pos = 0
    if tokens[0] != "->":
        while pos < len(tokens) and tokens[pos] != "->":
            item, pos = _parse_item(tokens, pos)
            params.append(item)
            if pos < len(tokens) and tokens[pos] == ",":
                pos += 1
    if pos < len(tokens) and tokens[pos] == "->":
        ret, pos = _parse_item(tokens, pos + 1)
    if pos != len(tokens):
        raise ContractError(
            f"trailing tokens {tokens[pos:]!r} in shapes contract"
        )
    return Contract(params=tuple(params), ret=ret)


# Events --------------------------------------------------------------------

@dataclass(frozen=True)
class ShapeEvent:
    """One provable contradiction found during inference."""

    kind: str  # broadcast | rank | axis | promote
    path: str
    line: int
    column: int
    message: str
    #: Qualified name of the function the event fired inside.
    function: str


# Numpy spec table ----------------------------------------------------------
#
# Each handler maps ``(recv, args, kwargs, ctx)`` to a ShapeVal, where
# ``recv`` is the already-evaluated method receiver (None for module
# functions) and ``ctx`` lets the handler report events or look up the
# promotion lattice.  Handlers never raise; unknown in, unknown out.

_FLOAT_ORDER = {"float16": 0, "float32": 1, "float64": 2}
_DTYPE_NAMES = frozenset(
    list(_FLOAT_ORDER)
    + ["int8", "int16", "int32", "int64", "uint8", "bool", "complex128"]
)


def _promote_dtype(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a is None or b is None:
        return a or b
    if a == b:
        return a
    if a in _FLOAT_ORDER and b in _FLOAT_ORDER:
        return a if _FLOAT_ORDER[a] >= _FLOAT_ORDER[b] else b
    if a in _FLOAT_ORDER:
        return a
    if b in _FLOAT_ORDER:
        return b
    return None


def _shape_arg_dims(val: ShapeVal) -> Optional[Tuple[Dim, ...]]:
    """Dims tuple from a ``shape=`` argument value, if decodable."""
    if val.kind == "int":
        return (val.value if val.value is not None else None,)
    if val.kind == "tuple":
        dims: List[Dim] = []
        for e in val.elts:
            if e.kind == "int":
                dims.append(e.value if e.value is not None else None)
            else:
                return None
        return tuple(dims)
    return None


def _dtype_arg(val: Optional[ShapeVal]) -> Optional[str]:
    if val is None:
        return None
    if val.kind == "str" and val.value in _DTYPE_NAMES:
        return val.value
    return None


def _first_array(args: Sequence[ShapeVal]) -> Optional[ShapeVal]:
    for a in args:
        if a.is_array:
            return a
    return None


def _spec_constructor(recv, args, kwargs, ctx) -> ShapeVal:
    """np.zeros / ones / empty / full: shape arg + dtype kwarg."""
    if not args:
        return UNKNOWN
    dims = _shape_arg_dims(args[0])
    if dims is None:
        return UNKNOWN
    return array_of(dims, _dtype_arg(kwargs.get("dtype")) or "float64")


def _spec_like(recv, args, kwargs, ctx) -> ShapeVal:
    if args and args[0].is_array:
        dtype = _dtype_arg(kwargs.get("dtype")) or args[0].dtype
        return array_of(args[0].dims, dtype)
    return UNKNOWN


def _spec_asarray(recv, args, kwargs, ctx) -> ShapeVal:
    if not args:
        return UNKNOWN
    src = args[0]
    dtype = _dtype_arg(kwargs.get("dtype")) or (
        _dtype_arg(args[1]) if len(args) > 1 else None
    )
    if src.is_array:
        return array_of(src.dims, dtype or src.dtype)
    if src.kind == "tuple":
        inner = [e for e in src.elts]
        if inner and all(e.kind in ("int", "num") for e in inner):
            return array_of((len(inner),), dtype)
        if inner and all(
            e.is_array and e.dims == inner[0].dims for e in inner
        ):
            return array_of((len(inner),) + inner[0].dims, dtype)
    return UNKNOWN


def _spec_arange(recv, args, kwargs, ctx) -> ShapeVal:
    return array_of((None,), _dtype_arg(kwargs.get("dtype")))


def _spec_linspace(recv, args, kwargs, ctx) -> ShapeVal:
    n: Dim = None
    if len(args) >= 3 and args[2].kind == "int":
        n = args[2].value
    return array_of((n,), _dtype_arg(kwargs.get("dtype")) or "float64")


def _axis_value(args, kwargs, position=0) -> Optional[ShapeVal]:
    if "axis" in kwargs:
        return kwargs["axis"]
    if len(args) > position:
        return args[position]
    return None


def _check_axis(arr: ShapeVal, axis: ShapeVal, ctx, site) -> Optional[int]:
    """Resolve a concrete axis; report when provably out of rank."""
    if axis is None or axis.kind != "int" or not isinstance(axis.value, int):
        return None
    rank = arr.rank
    if rank is None:
        return axis.value
    if not -rank <= axis.value < rank:
        ctx.event(
            "axis", site,
            f"axis {axis.value} is out of range for an inferred rank-"
            f"{rank} array",
        )
        return None
    return axis.value % rank


def _spec_reduce(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """sum/mean/max/... — axis=None collapses, axis=i drops dimension i."""
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    pos_args = args if recv is not None else args[1:]
    axis = _axis_value(pos_args, kwargs)
    keep = kwargs.get("keepdims")
    keepdims = keep is not None and keep.kind == "int" and keep.value == 1
    if axis is None or axis.kind == "none":
        if keepdims:
            return array_of((1,) * len(arr.dims), arr.dtype)
        return ShapeVal("num", dtype=arr.dtype)
    idx = _check_axis(arr, axis, ctx, site)
    if idx is None:
        return UNKNOWN
    dims = list(arr.dims)
    if keepdims:
        dims[idx] = 1
    else:
        del dims[idx]
    if not dims and not keepdims:
        return ShapeVal("num", dtype=arr.dtype)
    return array_of(dims, arr.dtype)


def _spec_index_reduce(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """argmax/any/...: reduce shapes, but the result dtype is not the
    operand's (indices or booleans) — keep it unknown."""
    out = _spec_reduce(recv, args, kwargs, ctx, site=site)
    if out.is_array:
        return array_of(out.dims, None)
    if out.kind == "num":
        return ShapeVal("num")
    return out


def _spec_predicate(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """isnan/isfinite/sign-style maps: shape-preserving, dtype reset."""
    out = _spec_elementwise(recv, args, kwargs, ctx, site=site)
    if out.is_array:
        return array_of(out.dims, None)
    return UNKNOWN


def _spec_concatenate(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    if not args or args[0].kind != "tuple" or not args[0].elts:
        return UNKNOWN
    parts = args[0].elts
    if not all(p.is_array for p in parts):
        return UNKNOWN
    rank = parts[0].rank
    if any(p.rank != rank for p in parts):
        return UNKNOWN
    axis = _axis_value(args[1:], kwargs)
    idx = 0
    if axis is not None:
        idx = _check_axis(parts[0], axis, ctx, site)
        if idx is None:
            return UNKNOWN
    dims: List[Dim] = []
    for d in range(rank):
        if d == idx:
            sizes = [p.dims[d] for p in parts]
            if all(isinstance(s, int) for s in sizes):
                dims.append(sum(sizes))
            else:
                dims.append(None)
        else:
            entries = {p.dims[d] for p in parts}
            dims.append(entries.pop() if len(entries) == 1 else None)
    dtype = parts[0].dtype
    for p in parts[1:]:
        dtype = _promote_dtype(dtype, p.dtype)
    return array_of(dims, dtype)


def _spec_stack(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    if not args or args[0].kind != "tuple" or not args[0].elts:
        return UNKNOWN
    parts = args[0].elts
    if not all(p.is_array for p in parts):
        return UNKNOWN
    base = parts[0].dims
    if any(p.dims != base for p in parts):
        return UNKNOWN
    return array_of((len(parts),) + base, parts[0].dtype)


def _spec_reshape(recv, args, kwargs, ctx) -> ShapeVal:
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    shape_args = args if recv is not None else args[1:]
    if len(shape_args) == 1:
        dims = _shape_arg_dims(shape_args[0])
    else:
        dims = _shape_arg_dims(
            ShapeVal("tuple", elts=tuple(shape_args))
        )
    if dims is None:
        return UNKNOWN
    resolved = tuple(None if d == -1 else d for d in dims)
    return array_of(resolved, arr.dtype)


def _spec_transpose(recv, args, kwargs, ctx) -> ShapeVal:
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    extra = args if recv is not None else args[1:]
    if extra:
        return array_of((None,) * len(arr.dims), arr.dtype)
    return array_of(tuple(reversed(arr.dims)), arr.dtype)


def _spec_atleast_2d(recv, args, kwargs, ctx) -> ShapeVal:
    if not args:
        return UNKNOWN
    src = args[0]
    if src.is_array:
        if len(src.dims) >= 2:
            return src
        if len(src.dims) == 1:
            return array_of((1,) + src.dims, src.dtype)
        return array_of((1, 1), src.dtype)
    if src.kind in ("int", "num"):
        return array_of((1, 1))
    return UNKNOWN


def _spec_atleast_1d(recv, args, kwargs, ctx) -> ShapeVal:
    if not args:
        return UNKNOWN
    src = args[0]
    if src.is_array:
        return src if src.dims else array_of((1,), src.dtype)
    if src.kind in ("int", "num"):
        return array_of((1,))
    return UNKNOWN


def _spec_expand_dims(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    if not args or not args[0].is_array:
        return UNKNOWN
    arr = args[0]
    axis = _axis_value(args[1:], kwargs)
    if axis is None or axis.kind != "int" or not isinstance(axis.value, int):
        return UNKNOWN
    rank = len(arr.dims)
    ax = axis.value
    if not -rank - 1 <= ax <= rank:
        ctx.event(
            "axis", site,
            f"expand_dims axis {ax} is out of range for an inferred "
            f"rank-{rank} array",
        )
        return UNKNOWN
    if ax < 0:
        ax += rank + 1
    dims = list(arr.dims)
    dims.insert(ax, 1)
    return array_of(dims, arr.dtype)


def _spec_matmul_like(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    arr_args = [a for a in args if True]
    if recv is not None:
        arr_args = [recv] + list(args)
    if len(arr_args) < 2:
        return UNKNOWN
    return _matmul_shapes(arr_args[0], arr_args[1], ctx, site)


def _matmul_shapes(a: ShapeVal, b: ShapeVal, ctx, site) -> ShapeVal:
    if not (a.is_array and b.is_array):
        return UNKNOWN
    ra, rb = len(a.dims), len(b.dims)
    dtype = _promote_dtype(a.dtype, b.dtype)
    if ra == 0 or rb == 0:
        ctx.event(
            "rank", site,
            "matmul requires operands of rank >= 1; a rank-0 operand "
            "was inferred",
        )
        return UNKNOWN
    inner_a = a.dims[-1]
    inner_b = b.dims[-2] if rb >= 2 else b.dims[0]
    if _dims_definitely_unequal(inner_a, inner_b):
        ctx.event(
            "broadcast", site,
            f"matmul inner dimensions are provably unequal "
            f"({inner_a} vs {inner_b})",
        )
        return UNKNOWN
    if ra == 1 and rb == 1:
        return ShapeVal("num", dtype=dtype)
    if ra == 1:
        return array_of(b.dims[:-2] + b.dims[-1:], dtype)
    if rb == 1:
        return array_of(a.dims[:-1], dtype)
    return array_of(a.dims[:-2] + (a.dims[-2], b.dims[-1]), dtype)


def _spec_elementwise(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """abs/exp/sqrt/...: shape-preserving on the first array argument."""
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    return arr


def _spec_broadcast_pair(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """maximum/minimum/where-style broadcasting over array arguments."""
    arrays = [a for a in args if a.is_array]
    if not arrays:
        return UNKNOWN
    dims = arrays[0].dims
    dtype = arrays[0].dtype
    for other in arrays[1:]:
        merged, bad = broadcast_dims(dims, other.dims)
        if bad:
            ctx.event(
                "broadcast", site,
                f"operands with provably incompatible shapes "
                f"{_fmt_dims(dims)} and {_fmt_dims(other.dims)}",
            )
            return UNKNOWN
        dims = merged
        dtype = _promote_dtype(dtype, other.dtype)
    return array_of(dims, dtype)


def _spec_astype(recv, args, kwargs, ctx) -> ShapeVal:
    if recv is None or not recv.is_array:
        return UNKNOWN
    dtype = _dtype_arg(args[0] if args else kwargs.get("dtype"))
    return array_of(recv.dims, dtype or None)


def _spec_copy_method(recv, args, kwargs, ctx) -> ShapeVal:
    if recv is not None and recv.is_array:
        return recv
    return _spec_elementwise(recv, args, kwargs, ctx)


def _spec_ravel(recv, args, kwargs, ctx) -> ShapeVal:
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    dims = arr.dims
    if all(isinstance(d, int) for d in dims):
        total = 1
        for d in dims:
            total *= d
        return array_of((total,), arr.dtype)
    if len(dims) == 1:
        return arr
    return array_of((None,), arr.dtype)


def _spec_squeeze(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    axis = _axis_value(args if recv is not None else args[1:], kwargs)
    if axis is not None and axis.kind == "int" and isinstance(
        axis.value, int
    ):
        idx = _check_axis(arr, axis, ctx, site)
        if idx is None:
            return UNKNOWN
        dims = list(arr.dims)
        if dims[idx] == 1:
            del dims[idx]
            return array_of(dims, arr.dtype)
        return UNKNOWN
    if all(isinstance(d, int) for d in arr.dims):
        return array_of(
            tuple(d for d in arr.dims if d != 1), arr.dtype
        )
    return UNKNOWN


def _spec_cumulative(recv, args, kwargs, ctx, site=None) -> ShapeVal:
    """cumsum/cumprod: flatten without axis, shape-preserving with."""
    arr = recv if recv is not None and recv.is_array else _first_array(args)
    if arr is None:
        return UNKNOWN
    axis = _axis_value(args if recv is not None else args[1:], kwargs)
    if axis is None or axis.kind == "none":
        return _spec_ravel(recv, args, kwargs, ctx)
    if _check_axis(arr, axis, ctx, site) is None:
        return UNKNOWN
    return arr


def _spec_scalar_cast(dtype: str):
    def handler(recv, args, kwargs, ctx) -> ShapeVal:
        if args and args[0].is_array:
            return array_of(args[0].dims, dtype)
        return ShapeVal("num", dtype=dtype)
    return handler


#: Module-level numpy function specs (``np.<fn>`` or bare imports).
NUMPY_SPECS: Dict[str, Callable] = {
    "zeros": _spec_constructor,
    "ones": _spec_constructor,
    "empty": _spec_constructor,
    "full": _spec_constructor,
    "zeros_like": _spec_like,
    "ones_like": _spec_like,
    "empty_like": _spec_like,
    "full_like": _spec_like,
    "asarray": _spec_asarray,
    "array": _spec_asarray,
    "ascontiguousarray": _spec_asarray,
    "arange": _spec_arange,
    "linspace": _spec_linspace,
    "concatenate": _spec_concatenate,
    "stack": _spec_stack,
    "reshape": _spec_reshape,
    "transpose": _spec_transpose,
    "atleast_1d": _spec_atleast_1d,
    "atleast_2d": _spec_atleast_2d,
    "expand_dims": _spec_expand_dims,
    "squeeze": _spec_squeeze,
    "ravel": _spec_ravel,
    "sum": _spec_reduce,
    "mean": _spec_reduce,
    "max": _spec_reduce,
    "min": _spec_reduce,
    "amax": _spec_reduce,
    "amin": _spec_reduce,
    "prod": _spec_reduce,
    "std": _spec_reduce,
    "var": _spec_reduce,
    "argmax": _spec_index_reduce,
    "argmin": _spec_index_reduce,
    "any": _spec_index_reduce,
    "all": _spec_index_reduce,
    "cumsum": _spec_cumulative,
    "cumprod": _spec_cumulative,
    "dot": _spec_matmul_like,
    "matmul": _spec_matmul_like,
    "maximum": _spec_broadcast_pair,
    "minimum": _spec_broadcast_pair,
    "where": _spec_broadcast_pair,
    "clip": _spec_elementwise,
    "abs": _spec_elementwise,
    "exp": _spec_elementwise,
    "log": _spec_elementwise,
    "sqrt": _spec_elementwise,
    "tanh": _spec_elementwise,
    "sign": _spec_predicate,
    "floor": _spec_elementwise,
    "ceil": _spec_elementwise,
    "rint": _spec_elementwise,
    "isnan": _spec_predicate,
    "isfinite": _spec_predicate,
    "copy": _spec_copy_method,
    "sort": _spec_elementwise,
    "argsort": _spec_elementwise,
    "float32": _spec_scalar_cast("float32"),
    "float64": _spec_scalar_cast("float64"),
    "int32": _spec_scalar_cast("int32"),
    "int64": _spec_scalar_cast("int64"),
}

#: Specs whose handler takes a ``site`` kwarg (event-reporting specs).
_SITE_SPECS = frozenset(
    name for name, fn in NUMPY_SPECS.items()
    if "site" in fn.__code__.co_varnames[:fn.__code__.co_argcount]
)

#: Array method specs (``x.<method>(...)``).
METHOD_SPECS: Dict[str, Callable] = {
    "reshape": _spec_reshape,
    "astype": _spec_astype,
    "copy": _spec_copy_method,
    "transpose": _spec_transpose,
    "ravel": _spec_ravel,
    "flatten": _spec_ravel,
    "squeeze": _spec_squeeze,
    "sum": _spec_reduce,
    "mean": _spec_reduce,
    "max": _spec_reduce,
    "min": _spec_reduce,
    "prod": _spec_reduce,
    "std": _spec_reduce,
    "var": _spec_reduce,
    "argmax": _spec_index_reduce,
    "argmin": _spec_index_reduce,
    "any": _spec_index_reduce,
    "all": _spec_index_reduce,
    "cumsum": _spec_cumulative,
    "clip": _spec_elementwise,
    "dot": _spec_matmul_like,
    "tolist": lambda recv, args, kwargs, ctx: UNKNOWN,
    "item": lambda recv, args, kwargs, ctx: ShapeVal("num"),
}

_METHOD_SITE_SPECS = frozenset(
    name for name, fn in METHOD_SPECS.items()
    if hasattr(fn, "__code__")
    and "site" in fn.__code__.co_varnames[:fn.__code__.co_argcount]
)


#: Generator draw methods whose ``size=`` kwarg fixes the result shape.
_RNG_DRAWS = frozenset([
    "normal", "uniform", "lognormal", "standard_normal", "exponential",
    "poisson", "integers", "random", "choice", "gamma", "beta",
])

#: Draws that always return float64 arrays.
_FLOAT_DRAWS = frozenset([
    "normal", "uniform", "lognormal", "standard_normal", "exponential",
    "random", "gamma", "beta",
])


def _fmt_dims(dims: Tuple[Dim, ...]) -> str:
    return "(" + ", ".join("?" if d is None else str(d) for d in dims) + ")"


# Engine --------------------------------------------------------------------

@dataclass
class _FrameResult:
    ret: ShapeVal = UNKNOWN
    saw_return: bool = False


class ShapeEngine:
    """Interprocedural abstract interpreter over one project index."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        by_name: Dict[str, List[FunctionInfo]] = {}
        for func in index.functions:
            by_name.setdefault(func.name, []).append(func)
        self._by_name = by_name
        self.events: List[ShapeEvent] = []
        self._event_keys: set = set()
        self._active: set = set()
        self._summaries: Dict[Tuple, ShapeVal] = {}
        self._current: List[FunctionInfo] = []

    # Event plumbing -----------------------------------------------------
    def event(self, kind: str, site: Optional[Dict], message: str) -> None:
        if not self._current:
            return
        func = self._current[-1]
        line = func.line
        column = func.column
        if site:
            line = site.get("ln", line)
            column = site.get("c", column)
        key = (kind, func.path, line, column, message)
        if key in self._event_keys:
            return
        self._event_keys.add(key)
        self.events.append(ShapeEvent(
            kind=kind,
            path=func.path,
            line=line,
            column=column,
            message=message,
            function=f"{func.module}.{func.qualname}",
        ))

    # Function-level inference ------------------------------------------
    def infer_function(
        self,
        func: FunctionInfo,
        params: Optional[Dict[str, ShapeVal]] = None,
        depth: int = 0,
    ) -> ShapeVal:
        """Abstract return value of ``func`` under the given parameter
        environment (missing parameters are unknown)."""
        key = (func.path, func.line, _env_key(params))
        if key in self._summaries:
            return self._summaries[key]
        if key in self._active or depth > _MAX_CALL_DEPTH:
            return UNKNOWN
        self._active.add(key)
        self._current.append(func)
        env: Dict[str, ShapeVal] = dict(params or {})
        result = _FrameResult()
        try:
            self._exec_block(func.shape_stmts, env, result, depth)
        finally:
            self._current.pop()
            self._active.discard(key)
        ret = result.ret if result.saw_return else NONE
        self._summaries[key] = ret
        return ret

    def _exec_block(
        self,
        stmts: List[Dict],
        env: Dict[str, ShapeVal],
        result: _FrameResult,
        depth: int,
    ) -> None:
        for stmt in stmts:
            op = stmt["s"]
            if op == "assign":
                val = self.eval_expr(stmt["e"], env, depth)
                for name in stmt["t"]:
                    env[name] = val
            elif op == "clear":
                for name in stmt["t"]:
                    env.pop(name, None)
            elif op == "return":
                expr = stmt.get("e")
                val = (
                    self.eval_expr(expr, env, depth)
                    if expr is not None else NONE
                )
                result.ret = (
                    val if not result.saw_return
                    else join_vals(result.ret, val)
                )
                result.saw_return = True
            elif op == "if":
                then_env = dict(env)
                else_env = dict(env)
                self._exec_block(stmt["body"], then_env, result, depth)
                self._exec_block(stmt["orelse"], else_env, result, depth)
                if stmt.get("raise_only"):
                    # The guard never falls through; the else branch is
                    # the only continuation.
                    env.clear()
                    env.update(else_env)
                else:
                    _join_envs(env, then_env, else_env)
            elif op in ("for", "while"):
                pre = dict(env)
                body_env = dict(env)
                target = stmt.get("t")
                if target:
                    body_env[target] = self._iter_element(
                        stmt.get("iter"), env, depth
                    )
                self._exec_block(stmt["body"], body_env, result, depth)
                _join_envs(env, pre, body_env)
                if target:
                    env.pop(target, None)
            elif op == "expr":
                self.eval_expr(stmt["e"], env, depth)

    def _iter_element(
        self, iter_ir: Optional[Dict], env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        if iter_ir is None:
            return UNKNOWN
        src = self.eval_expr(iter_ir, env, depth)
        if src.is_array and len(src.dims) >= 1:
            if len(src.dims) == 1:
                return ShapeVal("num", dtype=src.dtype)
            return array_of(src.dims[1:], src.dtype)
        return UNKNOWN

    # Expression evaluation ---------------------------------------------
    def eval_expr(
        self, ir: Dict, env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        kind = ir["k"]
        if kind == "n":
            return env.get(ir["id"], UNKNOWN)
        if kind == "c":
            return _const_val(ir)
        if kind == "t":
            return ShapeVal("tuple", elts=tuple(
                self.eval_expr(e, env, depth) for e in ir["e"]
            ))
        if kind == "attr":
            return self._eval_attr(ir, env, depth)
        if kind == "sub":
            return self._eval_subscript(ir, env, depth)
        if kind == "b":
            return self._eval_binop(ir, env, depth)
        if kind == "u":
            return self.eval_expr(ir["v"], env, depth)
        if kind == "ife":
            return join_vals(
                self.eval_expr(ir["b"], env, depth),
                self.eval_expr(ir["o"], env, depth),
            )
        if kind == "call":
            return self._eval_call(ir, env, depth)
        return UNKNOWN

    def _eval_attr(
        self, ir: Dict, env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        attr = ir["at"]
        base_ir = ir["b"]
        if (
            base_ir.get("k") == "n"
            and base_ir.get("id") in ("np", "numpy")
            and attr in _DTYPE_NAMES
        ):
            # ``np.float64`` used as a dtype= argument.
            return ShapeVal("str", value=attr)
        base = self.eval_expr(base_ir, env, depth)
        if base.is_array:
            if attr == "T":
                return array_of(tuple(reversed(base.dims)), base.dtype)
            if attr == "shape":
                return ShapeVal("tuple", elts=tuple(
                    int_of(d) for d in base.dims
                ))
            if attr == "ndim":
                return int_of(len(base.dims))
            if attr == "dtype":
                return (
                    ShapeVal("str", value=base.dtype)
                    if base.dtype else UNKNOWN
                )
            if attr == "size":
                if all(isinstance(d, int) for d in base.dims):
                    total = 1
                    for d in base.dims:
                        total *= d
                    return int_of(total)
                return ShapeVal("int")
        return UNKNOWN

    def _eval_subscript(
        self, ir: Dict, env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        base = self.eval_expr(ir["b"], env, depth)
        index = ir["i"]
        if base.kind == "tuple":
            if index["k"] == "i" and base.elts is not None:
                i = index["v"]
                if -len(base.elts) <= i < len(base.elts):
                    return base.elts[i]
            return UNKNOWN
        if not base.is_array:
            return UNKNOWN
        parts = index["e"] if index["k"] == "tup" else [index]
        dims: List[Dim] = []
        consumed = 0
        for part in parts:
            pk = part["k"]
            if pk == "i":
                if consumed >= len(base.dims):
                    return UNKNOWN
                consumed += 1
            elif pk == "sl":
                if consumed >= len(base.dims):
                    return UNKNOWN
                dims.append(None)
                consumed += 1
            elif pk == "na":
                dims.append(1)
            else:
                return UNKNOWN
        dims.extend(base.dims[consumed:])
        if not dims:
            return ShapeVal("num", dtype=base.dtype)
        return array_of(dims, base.dtype)

    def _eval_binop(
        self, ir: Dict, env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        left = self.eval_expr(ir["l"], env, depth)
        right = self.eval_expr(ir["r"], env, depth)
        op = ir["op"]
        site = ir
        if op == "matmul":
            return _matmul_shapes(left, right, self, site)
        if left.kind == "int" and right.kind == "int":
            if op == "add" and isinstance(left.value, int) and isinstance(
                right.value, int
            ):
                return int_of(left.value + right.value)
            if op == "mul" and isinstance(left.value, int) and isinstance(
                right.value, int
            ):
                return int_of(left.value * right.value)
            return ShapeVal("int")
        if left.is_array or right.is_array:
            if left.is_array and right.is_array:
                merged, bad = broadcast_dims(left.dims, right.dims)
                if bad:
                    self.event(
                        "broadcast", site,
                        f"arithmetic on provably incompatible shapes "
                        f"{_fmt_dims(left.dims)} and "
                        f"{_fmt_dims(right.dims)}",
                    )
                    return UNKNOWN
                dtype = _promote_dtype(left.dtype, right.dtype)
                if (
                    left.dtype in _FLOAT_ORDER
                    and right.dtype in _FLOAT_ORDER
                    and left.dtype != right.dtype
                ):
                    self.event(
                        "promote", site,
                        f"inferred {left.dtype} array meets "
                        f"{right.dtype} array; the result silently "
                        f"promotes to {dtype}",
                    )
                return array_of(merged, dtype)
            arr = left if left.is_array else right
            other = right if left.is_array else left
            dtype = arr.dtype
            if other.kind == "num" and other.dtype in _FLOAT_ORDER:
                promoted = _promote_dtype(dtype, other.dtype)
                if (
                    dtype in _FLOAT_ORDER
                    and other.dtype in _FLOAT_ORDER
                    and promoted != dtype
                ):
                    self.event(
                        "promote", site,
                        f"inferred {dtype} array meets a strong "
                        f"{other.dtype} scalar; the result silently "
                        f"promotes to {promoted}",
                    )
                dtype = promoted
            return array_of(arr.dims, dtype)
        if left.kind == "num" or right.kind == "num":
            return ShapeVal("num", dtype=_promote_dtype(
                left.dtype, right.dtype
            ))
        return UNKNOWN

    def _eval_call(
        self, ir: Dict, env: Dict[str, ShapeVal], depth: int
    ) -> ShapeVal:
        fn = ir.get("fn")
        if fn is None:
            return UNKNOWN
        recv_key = ir.get("recv")
        args = [self.eval_expr(a, env, depth) for a in ir["a"]]
        kwargs = {
            k: self.eval_expr(v, env, depth)
            for k, v in ir.get("kw", {}).items()
        }
        site = {"ln": ir.get("ln"), "c": ir.get("c")}
        if ir.get("ln") is None:
            site = None
        # Module-style numpy call: bare import or an np/numpy receiver.
        if recv_key in (None, "np", "numpy") and fn in NUMPY_SPECS:
            handler = NUMPY_SPECS[fn]
            if fn in _SITE_SPECS:
                return handler(None, args, kwargs, self, site=site)
            return handler(None, args, kwargs, self)
        # Method call on a locally-inferred array.
        if recv_key is not None and "." not in recv_key:
            recv_val = env.get(recv_key)
            if recv_val is not None and recv_val.is_array and (
                fn in METHOD_SPECS
            ):
                handler = METHOD_SPECS[fn]
                if fn in _METHOD_SITE_SPECS:
                    return handler(recv_val, args, kwargs, self, site=site)
                return handler(recv_val, args, kwargs, self)
        # Sized generator draws (``rng.normal(..., size=...)``): the
        # result shape is the ``size`` argument regardless of receiver.
        if fn in _RNG_DRAWS and "size" in kwargs:
            dims = _shape_arg_dims(kwargs["size"])
            if dims is not None:
                return array_of(
                    dims, "float64" if fn in _FLOAT_DRAWS else None
                )
            return UNKNOWN
        if fn == "len":
            if args and args[0].is_array:
                return int_of(args[0].dims[0])
            if args and args[0].kind == "tuple":
                return int_of(len(args[0].elts))
            return ShapeVal("int")
        if fn in ("float", "int"):
            return ShapeVal("num" if fn == "float" else "int")
        # Name-level interprocedural edge: unique callee in the index.
        candidates = self._by_name.get(fn, [])
        if len(candidates) == 1:
            callee = candidates[0]
            call_args = list(args)
            params = list(callee.params)
            if params and params[0] == "self":
                params = params[1:]
            callee_env = {
                name: val for name, val in zip(params, call_args)
            }
            for name, val in kwargs.items():
                if name in callee.params:
                    callee_env[name] = val
            return self.infer_function(callee, callee_env, depth + 1)
        return UNKNOWN


def _const_val(ir: Dict) -> ShapeVal:
    t = ir["t"]
    if t == "int":
        return int_of(ir["v"])
    if t == "bool":
        return ShapeVal("int")
    if t == "float":
        return ShapeVal("num")  # weak Python float: never promotes
    if t == "str":
        return ShapeVal("str", value=ir["v"])
    if t == "none":
        return NONE
    return UNKNOWN


def _join_envs(
    out: Dict[str, ShapeVal],
    a: Dict[str, ShapeVal],
    b: Dict[str, ShapeVal],
) -> None:
    out.clear()
    for name in set(a) | set(b):
        if name in a and name in b:
            out[name] = join_vals(a[name], b[name])
        # A name bound on only one path is unbound (unknown) after the
        # join; leaving it out means lookups default to UNKNOWN.


def _env_key(params: Optional[Dict[str, ShapeVal]]) -> Tuple:
    if not params:
        return ()
    return tuple(sorted(
        (name, repr(val)) for name, val in params.items()
    ))


# Batch-pair contract verification ------------------------------------------

@dataclass
class PairReport:
    """Static verdict for one ``@batched_pair`` declaration."""

    site: BatchPairSite
    #: None when the decorator has no ``shapes=`` kwarg.
    contract: Optional[Contract] = None
    parse_error: Optional[str] = None
    #: Inferred abstract return value (None when the function body was
    #: not found in the index).
    inferred: Optional[ShapeVal] = None
    #: Leading dimension of the inferred return ("K" = dataflow-proven).
    inferred_leading: Optional[Dim] = None
    #: Provable contradiction between inference and the contract.
    contradiction: Optional[str] = None
    #: Events raised while re-running inference with ``K = 1``.
    k1_events: List[ShapeEvent] = field(default_factory=list)

    @property
    def proven(self) -> bool:
        """Contract present, well-formed, batch-axis-sound, and not
        contradicted by inference (unknowns stay sound)."""
        return (
            self.contract is not None
            and self.parse_error is None
            and self.contract.binds_batch_axis
            and self.contract.returns_batch_axis
            and self.contradiction is None
            and not self.k1_events
        )


def _seed_env(
    func: FunctionInfo, contract: Contract, overrides: Dict[str, ShapeVal]
) -> Dict[str, ShapeVal]:
    params = list(func.params)
    if params and params[0] == "self":
        params = params[1:]
    env: Dict[str, ShapeVal] = {}
    for name, spec in zip(params, contract.params):
        val = spec.seed()
        if val is not UNKNOWN:
            env[name] = val
    env.update(overrides)
    return env


def _substitute_symbol(
    env: Dict[str, ShapeVal], symbol: str, value: int
) -> Dict[str, ShapeVal]:
    out: Dict[str, ShapeVal] = {}
    for name, val in env.items():
        if val.kind == "int" and val.value == symbol:
            out[name] = int_of(value)
        elif val.is_array and symbol in val.dims:
            out[name] = replace(val, dims=tuple(
                value if d == symbol else d for d in val.dims
            ))
        else:
            out[name] = val
    return out


def _find_function(
    index: ProjectIndex, site: BatchPairSite
) -> Optional[FunctionInfo]:
    qualname = (
        f"{site.class_name}.{site.batch_name}"
        if site.class_name else site.batch_name
    )
    for func in index.functions:
        if func.module == site.module and func.qualname == qualname:
            return func
    return None


def _check_contradiction(
    contract: Contract, inferred: ShapeVal
) -> Optional[str]:
    spec = contract.ret
    if spec is None or spec.kind == "any":
        return None
    if not inferred.is_array:
        return None  # unknown / scalar inference cannot contradict
    if spec.kind == "scalar":
        return (
            f"contract declares a scalar return but inference derived "
            f"an array of shape {_fmt_dims(inferred.dims)}"
        )
    if spec.kind == "int":
        return None
    if len(inferred.dims) != len(spec.dims):
        return (
            f"contract declares a rank-{len(spec.dims)} return but "
            f"inference derived rank {len(inferred.dims)} "
            f"({_fmt_dims(inferred.dims)})"
        )
    for got, want in zip(inferred.dims, spec.dims):
        if want is None:
            continue
        if isinstance(want, int) and isinstance(got, int) and got != want:
            return (
                f"contract declares return dims {_fmt_dims(spec.dims)} "
                f"but inference derived {_fmt_dims(inferred.dims)}"
            )
        if (
            isinstance(want, str) and isinstance(got, str) and got != want
        ):
            return (
                f"contract declares return dims {_fmt_dims(spec.dims)} "
                f"but inference derived {_fmt_dims(inferred.dims)}"
            )
    return None


def batch_contract_report(index: ProjectIndex) -> List[PairReport]:
    """Verify every ``@batched_pair`` contract against the dataflow.

    For each registered pair this parses its ``shapes=`` contract, seeds
    the batch function's parameters from it, runs the abstract
    interpreter, and re-runs with ``K`` collapsed to 1 to prove the
    single-row path shape-safe.  The per-pair :class:`PairReport` is the
    raw material of the V2 rules and the registry sweep test.
    """
    reports: List[PairReport] = []
    for site in sorted(
        index.batch_pairs, key=lambda s: (s.path, s.line, s.batch_name)
    ):
        report = PairReport(site=site)
        reports.append(report)
        if site.shapes is None:
            continue
        try:
            contract = parse_contract(site.shapes)
        except ContractError as exc:
            report.parse_error = str(exc)
            continue
        report.contract = contract
        func = _find_function(index, site)
        if func is None:
            continue
        engine = ShapeEngine(index)
        env = _seed_env(func, contract, {})
        inferred = engine.infer_function(func, env)
        report.inferred = inferred
        if inferred.is_array and inferred.dims:
            report.inferred_leading = inferred.dims[0]
        report.contradiction = _check_contradiction(contract, inferred)
        # K = 1 collapse: the single-row path must raise no provable
        # shape errors either.
        k1_engine = ShapeEngine(index)
        k1_env = _substitute_symbol(env, BATCH_SYMBOL, 1)
        k1_engine.infer_function(func, k1_env)
        report.k1_events = [
            e for e in k1_engine.events if e.kind != "promote"
        ]
    return reports


def hotpath_events(
    index: ProjectIndex, roots: Sequence[str]
) -> Iterator[ShapeEvent]:
    """Run inference over every function reachable from the hot-path
    roots (plus the roots themselves) with unknown parameters, yielding
    the provable contradictions — the V101/V102/V103/V105 feed."""
    by_name: Dict[str, List[FunctionInfo]] = {}
    for func in index.functions:
        by_name.setdefault(func.name, []).append(func)
    reachable: set = set()
    frontier = [n for n in roots if n in by_name]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        for func in by_name[name]:
            for callee in func.calls:
                if callee not in reachable and callee in by_name:
                    frontier.append(callee)
    engine = ShapeEngine(index)
    for func in sorted(
        index.functions, key=lambda f: (f.path, f.line)
    ):
        if func.name in reachable:
            engine.infer_function(func)
    yield from engine.events
