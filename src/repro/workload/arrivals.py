"""Arrival processes that drive workflow requests into the system.

A process attaches to a :class:`repro.sim.system.MicroserviceWorkflowSystem`
and schedules ``submit`` events on its event loop.  All randomness comes
from the system's seeded workload stream, so two systems built with the same
seed see identical arrivals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Optional

from repro.sim.system import MicroserviceWorkflowSystem
from repro.utils.rng import RngStream
from repro.workload.trace import ArrivalTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "DeterministicArrivalProcess",
    "ModulatedPoissonArrivalProcess",
    "TraceArrivalProcess",
]


class ArrivalProcess(ABC):
    """Base class: lifecycle + attachment to a system."""

    def __init__(self):
        self._system: Optional[MicroserviceWorkflowSystem] = None
        self.active = False
        self.submitted = 0

    def attach(self, system: MicroserviceWorkflowSystem) -> "ArrivalProcess":
        """Bind to a system and start scheduling arrivals; returns self."""
        if self._system is not None:
            raise RuntimeError("arrival process is already attached")
        self._system = system
        self.active = True
        self._start(system)
        return self

    def stop(self) -> None:
        """Stop generating arrivals (already-scheduled events are dropped)."""
        self.active = False

    def _submit(self, workflow_type: str) -> None:
        if self.active and self._system is not None:
            self._system.submit(workflow_type)
            self.submitted += 1

    @abstractmethod
    def _start(self, system: MicroserviceWorkflowSystem) -> None:
        """Schedule the first event(s) on the system's loop."""


class PoissonArrivalProcess(ArrivalProcess):
    """Independent Poisson arrivals per workflow type (Section VI-A1).

    ``rates`` maps workflow-type name to requests/second.  Zero-rate types
    are allowed and generate nothing.
    """

    def __init__(self, rates: Mapping[str, float]):
        super().__init__()
        for name, rate in rates.items():
            if rate < 0:
                raise ValueError(f"rate for {name!r} must be >= 0, got {rate!r}")
        self.rates = dict(rates)

    def _start(self, system: MicroserviceWorkflowSystem) -> None:
        for workflow_type, rate in self.rates.items():
            system.ensemble.workflow(workflow_type)  # validate the name
            if rate > 0:
                rng = system.workload_rng.fork(f"poisson/{workflow_type}")
                self._schedule_next(system, workflow_type, rate, rng)

    def _schedule_next(
        self,
        system: MicroserviceWorkflowSystem,
        workflow_type: str,
        rate: float,
        rng: RngStream,
    ) -> None:
        delay = float(rng.exponential(1.0 / rate))
        system.loop.schedule(
            delay,
            lambda: self._fire(system, workflow_type, rate, rng),
        )

    def _fire(self, system, workflow_type, rate, rng) -> None:
        if not self.active:
            return
        self._submit(workflow_type)
        self._schedule_next(system, workflow_type, rate, rng)


class DeterministicArrivalProcess(ArrivalProcess):
    """Fixed-interval arrivals — handy for exactly reproducible tests."""

    def __init__(self, intervals: Mapping[str, float]):
        super().__init__()
        for name, interval in intervals.items():
            if interval <= 0:
                raise ValueError(
                    f"interval for {name!r} must be positive, got {interval!r}"
                )
        self.intervals = dict(intervals)

    def _start(self, system: MicroserviceWorkflowSystem) -> None:
        for workflow_type, interval in self.intervals.items():
            system.ensemble.workflow(workflow_type)
            self._schedule_next(system, workflow_type, interval)

    def _schedule_next(self, system, workflow_type, interval) -> None:
        system.loop.schedule(
            interval, lambda: self._fire(system, workflow_type, interval)
        )

    def _fire(self, system, workflow_type, interval) -> None:
        if not self.active:
            return
        self._submit(workflow_type)
        self._schedule_next(system, workflow_type, interval)


class ModulatedPoissonArrivalProcess(ArrivalProcess):
    """Two-phase Markov-modulated Poisson process (bursty workloads).

    Alternates between a low-rate and a high-rate phase with exponentially
    distributed phase durations.  Models the "variant number of requests in
    different time windows" challenge of Section II-C more aggressively than
    a plain Poisson process.
    """

    def __init__(
        self,
        low_rates: Mapping[str, float],
        high_rates: Mapping[str, float],
        mean_phase_duration: float = 300.0,
    ):
        super().__init__()
        if set(low_rates) != set(high_rates):
            raise ValueError("low and high rate maps must cover the same types")
        if mean_phase_duration <= 0:
            raise ValueError(
                f"mean_phase_duration must be positive, got {mean_phase_duration!r}"
            )
        self.low_rates = dict(low_rates)
        self.high_rates = dict(high_rates)
        self.mean_phase_duration = mean_phase_duration
        self.phase = "low"

    def _current_rate(self, workflow_type: str) -> float:
        rates = self.low_rates if self.phase == "low" else self.high_rates
        return rates[workflow_type]

    def _start(self, system: MicroserviceWorkflowSystem) -> None:
        self._phase_rng = system.workload_rng.fork("mmpp/phase")
        for workflow_type in self.low_rates:
            system.ensemble.workflow(workflow_type)
            rng = system.workload_rng.fork(f"mmpp/{workflow_type}")
            self._schedule_next(system, workflow_type, rng)
        self._schedule_phase_switch(system)

    def _schedule_phase_switch(self, system) -> None:
        delay = float(self._phase_rng.exponential(self.mean_phase_duration))
        system.loop.schedule(delay, lambda: self._switch_phase(system))

    def _switch_phase(self, system) -> None:
        if not self.active:
            return
        self.phase = "high" if self.phase == "low" else "low"
        self._schedule_phase_switch(system)

    def _schedule_next(self, system, workflow_type, rng) -> None:
        rate = self._current_rate(workflow_type)
        # With rate 0 in this phase, poll again after a phase-scale delay.
        delay = (
            float(rng.exponential(1.0 / rate))
            if rate > 0
            else self.mean_phase_duration / 10.0
        )
        system.loop.schedule(
            delay, lambda: self._fire(system, workflow_type, rng, rate)
        )

    def _fire(self, system, workflow_type, rng, sampled_rate) -> None:
        if not self.active:
            return
        # Thinning: if the phase changed, accept with probability
        # new_rate / sampled_rate (standard MMPP simulation via thinning).
        current = self._current_rate(workflow_type)
        if sampled_rate > 0 and current > 0:
            accept = min(1.0, current / sampled_rate)
            if float(rng.uniform()) < accept:
                self._submit(workflow_type)
        elif current > 0 and sampled_rate == 0:
            pass  # polling wake-up, no arrival
        self._schedule_next(system, workflow_type, rng)


class TraceArrivalProcess(ArrivalProcess):
    """Replay a recorded :class:`ArrivalTrace` exactly.

    Comparisons across allocators use this so every algorithm faces the
    identical arrival sequence.
    """

    def __init__(self, trace: ArrivalTrace):
        super().__init__()
        self.trace = trace

    def _start(self, system: MicroserviceWorkflowSystem) -> None:
        now = system.loop.now
        for time, workflow_type in self.trace.events:
            if time < now:
                raise ValueError(
                    f"trace event at t={time} is before current time {now}"
                )
            system.loop.schedule_at(
                time, lambda wt=workflow_type: self._submit(wt)
            )
