"""The paper's burst scenarios (Section VI-D).

"For MSD dataset, the bursts are 300 requests, 200 requests, 300 requests
for Type1, Type2, and Type3; 1000, 300, 400 for Type1 to Type3; and 500,
500, 500.  For LIGO dataset the bursts are 100, 100, 50, 30 for DataFind,
CAT, Full, Injection; 150, 150, 80, 50; and 80, 80, 80, 80 for the 4
workflows.  These request bursts are fed into the system at the beginning
of each evaluation.  We also feed the system with continuous workflow
requests sampled from Poisson process."

The background Poisson rates are not printed in the paper; the defaults
here are calibrated so the steady-state demand uses roughly a third of the
consumer budget, leaving the bursts as the dominant stress (matching the
drain-then-recover shapes of Figs. 7–8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = [
    "BurstScenario",
    "MSD_BURSTS",
    "LIGO_BURSTS",
    "MSD_BACKGROUND_RATES",
    "LIGO_BACKGROUND_RATES",
]


@dataclass(frozen=True)
class BurstScenario:
    """One evaluation condition: an initial burst + background Poisson rates."""

    name: str
    burst: Mapping[str, int]
    background_rates: Mapping[str, float]

    def __post_init__(self):
        for workflow_type, count in self.burst.items():
            if count < 0:
                raise ValueError(
                    f"burst count for {workflow_type!r} must be >= 0, got {count}"
                )
        for workflow_type, rate in self.background_rates.items():
            if rate < 0:
                raise ValueError(
                    f"rate for {workflow_type!r} must be >= 0, got {rate!r}"
                )

    @property
    def total_burst_requests(self) -> int:
        return sum(self.burst.values())


#: Background Poisson rates (requests/second per workflow type), calibrated
#: so steady-state demand occupies a meaningful fraction of the consumer
#: budget (C=14 for MSD, C=30 for LIGO) without the bursts.
MSD_BACKGROUND_RATES: Dict[str, float] = {
    "Type1": 0.10,
    "Type2": 0.10,
    "Type3": 0.08,
}

LIGO_BACKGROUND_RATES: Dict[str, float] = {
    "DataFind": 0.12,
    "CAT": 0.06,
    "Full": 0.036,
    "Injection": 0.036,
}

#: The three MSD burst conditions of Fig. 7.
MSD_BURSTS = (
    BurstScenario(
        "msd-burst1",
        {"Type1": 300, "Type2": 200, "Type3": 300},
        MSD_BACKGROUND_RATES,
    ),
    BurstScenario(
        "msd-burst2",
        {"Type1": 1000, "Type2": 300, "Type3": 400},
        MSD_BACKGROUND_RATES,
    ),
    BurstScenario(
        "msd-burst3",
        {"Type1": 500, "Type2": 500, "Type3": 500},
        MSD_BACKGROUND_RATES,
    ),
)

#: The three LIGO burst conditions of Fig. 8.
LIGO_BURSTS = (
    BurstScenario(
        "ligo-burst1",
        {"DataFind": 100, "CAT": 100, "Full": 50, "Injection": 30},
        LIGO_BACKGROUND_RATES,
    ),
    BurstScenario(
        "ligo-burst2",
        {"DataFind": 150, "CAT": 150, "Full": 80, "Injection": 50},
        LIGO_BACKGROUND_RATES,
    ),
    BurstScenario(
        "ligo-burst3",
        {"DataFind": 80, "CAT": 80, "Full": 80, "Injection": 80},
        LIGO_BACKGROUND_RATES,
    ),
)
