"""Arrival-trace record and replay."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Tuple, Union

from repro.utils.rng import RngStream

__all__ = ["ArrivalTrace"]


@dataclass
class ArrivalTrace:
    """A time-ordered sequence of (arrival_time, workflow_type) events."""

    events: List[Tuple[float, str]] = field(default_factory=list)

    def __post_init__(self):
        last = -1.0
        for time, workflow_type in self.events:
            if time < 0:
                raise ValueError(f"negative arrival time {time!r}")
            if time < last:
                raise ValueError("trace events must be time-ordered")
            if not workflow_type:
                raise ValueError("workflow type must be non-empty")
            last = time

    @classmethod
    def poisson(
        cls,
        rates: Mapping[str, float],
        horizon: float,
        rng: RngStream,
    ) -> "ArrivalTrace":
        """Pre-sample a Poisson trace over ``[0, horizon)``.

        Unlike the live :class:`PoissonArrivalProcess`, the trace is fixed
        up-front, so competing allocators can be evaluated on identical
        arrivals.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        events: List[Tuple[float, str]] = []
        for workflow_type, rate in rates.items():
            if rate < 0:
                raise ValueError(f"rate for {workflow_type!r} must be >= 0")
            if rate == 0:
                continue
            t = 0.0
            stream = rng.fork(f"trace/{workflow_type}")
            while True:
                t += float(stream.exponential(1.0 / rate))
                if t >= horizon:
                    break
                events.append((t, workflow_type))
        events.sort(key=lambda e: e[0])
        return cls(events)

    def counts(self) -> Mapping[str, int]:
        """Total arrivals per workflow type."""
        out: dict = {}
        for _, workflow_type in self.events:
            out[workflow_type] = out.get(workflow_type, 0) + 1
        return out

    @property
    def horizon(self) -> float:
        """Timestamp of the last event (0.0 for an empty trace)."""
        return self.events[-1][0] if self.events else 0.0

    def shifted(self, offset: float) -> "ArrivalTrace":
        """A copy with every timestamp moved by ``offset`` (>= 0 result)."""
        events = [(t + offset, wt) for t, wt in self.events]
        return ArrivalTrace(events)

    # Persistence -----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines."""
        path = Path(path)
        with path.open("w") as handle:
            for time, workflow_type in self.events:
                handle.write(json.dumps({"t": time, "wf": workflow_type}) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a trace written by :meth:`save`."""
        events: List[Tuple[float, str]] = []
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append((float(record["t"]), str(record["wf"])))
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)
