"""Workload generation: arrival processes, burst scenarios, traces.

"We use Poisson process to emulate request traces for both workflow
datasets" (Section VI-A1) and "generate bursts of workflow requests"
(Section VI-D).  This package provides both, plus a Markov-modulated
process for the dynamic-workload stress the paper's introduction motivates,
and record/replay traces so every algorithm in a comparison sees the exact
same arrivals.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivalProcess,
    ModulatedPoissonArrivalProcess,
    PoissonArrivalProcess,
    TraceArrivalProcess,
)
from repro.workload.bursts import (
    BurstScenario,
    LIGO_BACKGROUND_RATES,
    LIGO_BURSTS,
    MSD_BACKGROUND_RATES,
    MSD_BURSTS,
)
from repro.workload.trace import ArrivalTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivalProcess",
    "DeterministicArrivalProcess",
    "ModulatedPoissonArrivalProcess",
    "TraceArrivalProcess",
    "ArrivalTrace",
    "BurstScenario",
    "MSD_BURSTS",
    "LIGO_BURSTS",
    "MSD_BACKGROUND_RATES",
    "LIGO_BACKGROUND_RATES",
]
