"""Weight initialisers for dense layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngStream

__all__ = ["glorot_uniform", "he_uniform", "uniform_init", "constant_init"]


def glorot_uniform(fan_in: int, fan_out: int, rng: RngStream) -> np.ndarray:
    """Glorot/Xavier uniform initialisation — good default for tanh/softmax."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: RngStream) -> np.ndarray:
    """He uniform initialisation — default for ReLU layers."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def uniform_init(
    fan_in: int, fan_out: int, rng: RngStream, limit: float = 3e-3
) -> np.ndarray:
    """Small uniform initialisation.

    DDPG conventionally initialises the final actor/critic layers with small
    uniform weights so the initial policy output is near-uniform and initial
    Q estimates are near zero.
    """
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def constant_init(fan_in: int, fan_out: int, value: float = 0.0) -> np.ndarray:
    """Constant initialisation (used for biases)."""
    return np.full((fan_in, fan_out), value, dtype=np.float64)
