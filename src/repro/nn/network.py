"""Sequential multilayer perceptron.

This is the single network container used by the environment model, the
actor, and the critic.  Beyond the usual ``fit``/``predict`` it exposes the
three capabilities the MIRAS algorithms require:

- **input gradients** (:meth:`MLP.input_gradient`) for the deterministic
  policy gradient, which chains dQ/da through the critic's action input;
- **flat parameter vectors** (:meth:`MLP.get_flat` / :meth:`MLP.set_flat`)
  for parameter-space exploration noise, which perturbs the whole policy
  network with Gaussian noise;
- **auxiliary (second-layer) inputs** so the critic can receive the action
  "at the second layer" exactly as the paper describes.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Dense
from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.optimizers import Adam, Optimizer
from repro.utils.rng import RngStream, fallback_stream

__all__ = ["MLP", "soft_update"]


class MLP:
    """A stack of :class:`Dense` layers.

    Parameters
    ----------
    layer_sizes:
        ``[in_dim, hidden..., out_dim]``; at least one layer (two entries).
    hidden_activation / output_activation:
        Activation names for hidden layers and the final layer.
    aux_dim / aux_layer:
        If ``aux_dim`` > 0, layer index ``aux_layer`` (0-based) receives an
        extra input of that width concatenated to its normal input.  The
        paper's critic uses ``aux_layer=1`` to inject the action at the
        second layer.
    rng:
        Seeded stream for weight initialisation.
    final_init:
        Initialiser for the last layer; DDPG uses ``small_uniform``.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        aux_dim: int = 0,
        aux_layer: int = 1,
        rng: Optional[RngStream] = None,
        final_init: str = "glorot",
    ):
        if len(layer_sizes) < 2:
            raise ValueError(
                f"layer_sizes needs >= 2 entries, got {list(layer_sizes)}"
            )
        if aux_dim and not 0 <= aux_layer < len(layer_sizes) - 1:
            raise ValueError(
                f"aux_layer {aux_layer} out of range for "
                f"{len(layer_sizes) - 1} layers"
            )
        if rng is None:
            rng = fallback_stream("mlp")

        self.layer_sizes = list(layer_sizes)
        self.hidden_activation = hidden_activation
        self.output_activation = output_activation
        self.aux_dim = aux_dim
        self.aux_layer = aux_layer if aux_dim else -1
        self.layers: List[Dense] = []
        last = len(layer_sizes) - 2
        for i, (n_in, n_out) in enumerate(zip(layer_sizes, layer_sizes[1:])):
            is_last = i == last
            activation = output_activation if is_last else hidden_activation
            init = final_init if is_last else "he"
            layer_aux = aux_dim if i == self.aux_layer else 0
            self.layers.append(
                Dense(
                    n_in,
                    n_out,
                    activation=activation,
                    init=init,
                    aux_dim=layer_aux,
                    rng=rng.fork(f"layer{i}"),
                )
            )

    # ------------------------------------------------------------------
    @property
    def in_dim(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_dim(self) -> int:
        return self.layer_sizes[-1]

    def forward(
        self, x: np.ndarray, aux: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Run a batch through the network, caching for backward()."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if aux is not None:
            aux = np.atleast_2d(np.asarray(aux, dtype=np.float64))
        h = x
        for i, layer in enumerate(self.layers):
            h = layer.forward(h, aux if i == self.aux_layer else None)
        return h

    def predict(
        self, x: np.ndarray, aux: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Forward pass; 1-D inputs give 1-D outputs."""
        single = np.asarray(x).ndim == 1
        out = self.forward(x, aux)
        return out[0] if single else out

    def backward(
        self, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Backpropagate ``dL/d(output)``; returns ``(dL/dx, dL/daux)``.

        Per-layer weight gradients are left in each layer's
        ``grad_weights`` / ``grad_bias``.
        """
        grad = grad_out
        grad_aux: Optional[np.ndarray] = None
        for i in range(len(self.layers) - 1, -1, -1):
            grad, layer_grad_aux = self.layers[i].backward(grad)
            if layer_grad_aux is not None:
                grad_aux = layer_grad_aux
        return grad, grad_aux

    def input_gradient(
        self,
        x: np.ndarray,
        grad_out: Optional[np.ndarray] = None,
        aux: Optional[np.ndarray] = None,
        wrt: str = "input",
    ) -> np.ndarray:
        """Gradient of (a scalar projection of) the output w.r.t. inputs.

        With ``grad_out=None`` the output is assumed scalar per sample and a
        vector of ones is used — this gives d(output)/d(input) directly,
        which is what the deterministic policy gradient needs from the
        critic (``wrt='aux'`` selects the action input).
        """
        out = self.forward(x, aux)
        if grad_out is None:
            grad_out = np.ones_like(out)
        grad_x, grad_aux = self.backward(grad_out)
        if wrt == "input":
            return grad_x
        if wrt == "aux":
            if grad_aux is None:
                raise ValueError("network has no auxiliary input")
            return grad_aux
        raise ValueError(f"wrt must be 'input' or 'aux', got {wrt!r}")

    # Training ----------------------------------------------------------
    def params_and_grads(self):
        """(parameter, gradient) pairs for the optimiser, layer order."""
        pairs = []
        for layer in self.layers:
            pairs.append((layer.weights, layer.grad_weights))
            pairs.append((layer.bias, layer.grad_bias))
        return pairs

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optional[Optimizer] = None,
        loss: Optional[Loss] = None,
        aux: Optional[np.ndarray] = None,
    ) -> float:
        """One gradient step on a batch; returns the batch loss."""
        optimizer = optimizer or getattr(self, "_default_optimizer", None)
        if optimizer is None:
            self._default_optimizer = optimizer = Adam()
        loss = loss or MeanSquaredError()
        prediction = self.forward(x, aux)
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        value, grad = loss(prediction, y)
        self.backward(grad)
        optimizer.step(self.params_and_grads())
        return value

    # Parameter-vector API (for parameter-space noise) -------------------
    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    def get_flat(self) -> np.ndarray:
        """All parameters as one flat copy."""
        return np.concatenate([layer.get_flat() for layer in self.layers])

    def set_flat(self, flat: np.ndarray) -> None:
        """Load all parameters from a flat vector."""
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != (self.num_params,):
            raise ValueError(
                f"flat vector has shape {flat.shape}, "
                f"expected ({self.num_params},)"
            )
        offset = 0
        for layer in self.layers:
            size = layer.num_params
            layer.set_flat(flat[offset : offset + size])
            offset += size

    def state_dict(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Copy of all parameters keyed by layer index."""
        return {f"layer{i}": l.state_dict() for i, l in enumerate(self.layers)}

    def load_state_dict(self, state: Dict[str, Dict[str, np.ndarray]]) -> None:
        for i, layer in enumerate(self.layers):
            layer.load_state_dict(state[f"layer{i}"])

    def clone(self) -> "MLP":
        """Structural + parameter deep copy (used for target networks)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arch = " -> ".join(str(s) for s in self.layer_sizes)
        aux = f", aux_dim={self.aux_dim}@layer{self.aux_layer}" if self.aux_dim else ""
        return f"MLP({arch}{aux})"


def soft_update(target: MLP, source: MLP, tau: float) -> None:
    """Polyak-average ``target <- tau * source + (1 - tau) * target``.

    This is DDPG's target-network update; ``tau=1`` copies outright.
    """
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must lie in (0, 1], got {tau!r}")
    if target.num_params != source.num_params:
        raise ValueError("target and source networks differ in size")
    blended = tau * source.get_flat() + (1.0 - tau) * target.get_flat()
    target.set_flat(blended)
