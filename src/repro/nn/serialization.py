"""Save/load MLPs as ``.npz`` archives.

The archive stores the architecture (layer sizes, activations, auxiliary
input config) alongside every layer's weights and biases, so a saved
network can be reconstructed without any other context.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.network import MLP
from repro.utils.rng import RngStream

__all__ = ["save_mlp", "load_mlp"]

_META_KEY = "__meta__"


def save_mlp(path: Union[str, Path], network: MLP) -> Path:
    """Write ``network`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "layer_sizes": network.layer_sizes,
        "hidden_activation": network.hidden_activation,
        "output_activation": network.output_activation,
        "aux_dim": network.aux_dim,
        "aux_layer": network.aux_layer if network.aux_dim else 1,
    }
    arrays = {
        _META_KEY: np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
    }
    for i, layer in enumerate(network.layers):
        arrays[f"layer{i}/weights"] = layer.weights
        arrays[f"layer{i}/bias"] = layer.bias
    np.savez(path, **arrays)
    return path


def load_mlp(path: Union[str, Path]) -> MLP:
    """Reconstruct an MLP written by :func:`save_mlp`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a saved MLP (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        network = MLP(
            meta["layer_sizes"],
            hidden_activation=meta["hidden_activation"],
            output_activation=meta["output_activation"],
            aux_dim=meta["aux_dim"],
            aux_layer=meta["aux_layer"],
            # Initial weights are discarded below, so a fixed init seed
            # is fine here and the loaded network stays deterministic.
            rng=RngStream(  # reprolint: disable=D201
                "load-mlp", np.random.SeedSequence(0)
            ),
        )
        for i, layer in enumerate(network.layers):
            weights = archive[f"layer{i}/weights"]
            bias = archive[f"layer{i}/bias"]
            if weights.shape != layer.weights.shape:
                raise ValueError(
                    f"layer {i} weight shape mismatch in {path}: "
                    f"{weights.shape} vs {layer.weights.shape}"
                )
            layer.weights = weights.copy()
            layer.bias = bias.copy()
    return network
