"""Dense (fully connected) layer with backpropagation.

The layer supports everything MIRAS's networks need:

- forward/backward over mini-batches,
- gradients with respect to the *input* (the deterministic policy gradient
  chains dQ/da through the critic's input),
- an optional *auxiliary input* concatenated at this layer (the paper's
  critic "inserts one of Critic's inputs — action — to the second layer"),
- flattened parameter views for parameter-space exploration noise.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import (
    constant_init,
    glorot_uniform,
    he_uniform,
    uniform_init,
)
from repro.utils.rng import RngStream, fallback_stream

__all__ = ["Dense"]

_INITIALIZERS = {
    "glorot": glorot_uniform,
    "he": he_uniform,
    "small_uniform": uniform_init,
}


class Dense:
    """A fully connected layer ``y = f(x @ W + b)``.

    Parameters
    ----------
    in_dim, out_dim:
        Input/output widths.  If ``aux_dim`` is non-zero, the effective input
        width is ``in_dim + aux_dim`` and callers must pass the auxiliary
        tensor to :meth:`forward`.
    activation:
        Name of the activation (see :func:`repro.nn.get_activation`) or an
        :class:`Activation` instance.
    init:
        One of ``glorot``, ``he``, ``small_uniform``.
    aux_dim:
        Width of an auxiliary input concatenated to this layer's input.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        activation: str = "relu",
        init: str = "he",
        aux_dim: int = 0,
        rng: Optional[RngStream] = None,
    ):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(
                f"layer dims must be positive, got in={in_dim}, out={out_dim}"
            )
        if aux_dim < 0:
            raise ValueError(f"aux_dim must be >= 0, got {aux_dim}")
        if init not in _INITIALIZERS:
            known = ", ".join(sorted(_INITIALIZERS))
            raise ValueError(f"unknown init {init!r}; known: {known}")
        if rng is None:
            rng = fallback_stream("dense")

        self.in_dim = in_dim
        self.out_dim = out_dim
        self.aux_dim = aux_dim
        self.activation: Activation = (
            activation
            if isinstance(activation, Activation)
            else get_activation(activation)
        )
        fan_in = in_dim + aux_dim
        self.weights = _INITIALIZERS[init](fan_in, out_dim, rng)
        self.bias = constant_init(1, out_dim).reshape(out_dim)

        # Gradients populated by backward().
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

        # Forward cache.
        self._x: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        # Preallocated [x | aux] buffer, reused while the batch size is
        # stable (fixed-shape training batches never reallocate).  Filling
        # it is value-identical to np.concatenate, so outputs are bitwise
        # unchanged.
        self._concat_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, aux: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute the layer output for a batch ``x`` of shape (B, in_dim)."""
        if x.ndim != 2:
            raise ValueError(f"expected 2-D batch input, got shape {x.shape}")
        if self.aux_dim:
            if aux is None:
                raise ValueError("layer expects an auxiliary input")
            if aux.shape != (x.shape[0], self.aux_dim):
                raise ValueError(
                    f"aux shape {aux.shape} != ({x.shape[0]}, {self.aux_dim})"
                )
            if x.dtype == np.float64 and aux.dtype == np.float64:
                buf = self._concat_buf
                if buf is None or buf.shape[0] != x.shape[0]:
                    buf = np.empty(
                        (x.shape[0], self.in_dim + self.aux_dim),
                        dtype=np.float64,
                    )
                    self._concat_buf = buf
                buf[:, : self.in_dim] = x
                buf[:, self.in_dim :] = aux
                x = buf
            else:
                x = np.concatenate([x, aux], axis=1)
        elif aux is not None:
            raise ValueError("layer does not accept an auxiliary input")

        self._x = x
        self._z = x @ self.weights + self.bias
        self._y = self.activation.forward(self._z)
        return self._y

    def backward(self, grad_y: np.ndarray) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Backpropagate ``dL/dy``; returns ``(dL/dx, dL/daux)``.

        Also accumulates ``grad_weights`` / ``grad_bias`` (overwriting the
        previous values — optimizers read them right after).
        """
        if self._x is None or self._z is None or self._y is None:
            raise RuntimeError("backward() called before forward()")
        grad_z = self.activation.backward(grad_y, self._z, self._y)
        self.grad_weights = self._x.T @ grad_z
        self.grad_bias = grad_z.sum(axis=0)
        grad_x_full = grad_z @ self.weights.T
        if self.aux_dim:
            return grad_x_full[:, : self.in_dim], grad_x_full[:, self.in_dim :]
        return grad_x_full, None

    # Parameter flattening (for parameter-space noise) ------------------
    @property
    def num_params(self) -> int:
        return self.weights.size + self.bias.size

    def get_flat(self) -> np.ndarray:
        """Return a flat copy of (weights, bias)."""
        return np.concatenate([self.weights.ravel(), self.bias.ravel()])

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat`."""
        if flat.shape != (self.num_params,):
            raise ValueError(
                f"flat vector has shape {flat.shape}, expected ({self.num_params},)"
            )
        w_size = self.weights.size
        self.weights = flat[:w_size].reshape(self.weights.shape).copy()
        self.bias = flat[w_size:].reshape(self.bias.shape).copy()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters for checkpointing."""
        return {"weights": self.weights.copy(), "bias": self.bias.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if state["weights"].shape != self.weights.shape:
            raise ValueError("weights shape mismatch in state dict")
        if state["bias"].shape != self.bias.shape:
            raise ValueError("bias shape mismatch in state dict")
        self.weights = state["weights"].copy()
        self.bias = state["bias"].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        aux = f", aux_dim={self.aux_dim}" if self.aux_dim else ""
        return (
            f"Dense({self.in_dim} -> {self.out_dim}, "
            f"activation={self.activation.name}{aux})"
        )
