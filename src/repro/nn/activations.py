"""Activation functions with forward and backward passes.

Every activation implements ``forward(z) -> y`` and
``backward(grad_y, z, y) -> grad_z``.  The backward pass receives both the
pre-activation ``z`` and the cached output ``y`` so that each activation can
use whichever is cheaper (e.g. softmax only needs ``y``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Linear",
    "get_activation",
]


class Activation(ABC):
    """Base class for activation functions."""

    name = "activation"

    @abstractmethod
    def forward(self, z: np.ndarray) -> np.ndarray:
        """Apply the non-linearity elementwise (or rowwise for softmax)."""

    @abstractmethod
    def backward(
        self, grad_y: np.ndarray, z: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Chain ``grad_y = dL/dy`` back to ``dL/dz``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ReLU(Activation):
    """Rectified linear unit — the paper's stated hidden activation."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def backward(self, grad_y, z, y):
        return grad_y * (z > 0.0)


class LeakyReLU(Activation):
    """Leaky ReLU; avoids dead units in small networks."""

    name = "leaky_relu"

    def __init__(self, negative_slope: float = 0.01):
        if negative_slope < 0:
            raise ValueError("negative_slope must be >= 0")
        self.negative_slope = negative_slope

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.where(z > 0.0, z, self.negative_slope * z)

    def backward(self, grad_y, z, y):
        return grad_y * np.where(z > 0.0, 1.0, self.negative_slope)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def backward(self, grad_y, z, y):
        return grad_y * (1.0 - y * y)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def backward(self, grad_y, z, y):
        return grad_y * y * (1.0 - y)


class Softmax(Activation):
    """Row-wise softmax.

    The MIRAS actor ends in a softmax so its output is a categorical
    distribution over task types; the allocation is then
    ``m_j = floor(C * a_j)`` which automatically satisfies the consumer
    budget (Section IV-D of the paper).
    """

    name = "softmax"

    def forward(self, z: np.ndarray) -> np.ndarray:
        shifted = z - np.max(z, axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=-1, keepdims=True)

    def backward(self, grad_y, z, y):
        # Jacobian-vector product: dz_i = y_i * (g_i - sum_j g_j y_j)
        dot = np.sum(grad_y * y, axis=-1, keepdims=True)
        return y * (grad_y - dot)


class Linear(Activation):
    """Identity activation (used for regression output layers)."""

    name = "linear"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def backward(self, grad_y, z, y):
        return grad_y


_REGISTRY = {
    cls.name: cls for cls in (ReLU, LeakyReLU, Tanh, Sigmoid, Softmax, Linear)
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name (``relu``, ``tanh``, ``softmax``, ...)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown activation {name!r}; known: {known}") from None
