"""Regression losses for the environment model and the DDPG critic."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "HuberLoss", "get_loss"]


class Loss(ABC):
    """Base class: ``__call__`` returns ``(loss_value, grad_wrt_prediction)``."""

    name = "loss"

    @abstractmethod
    def __call__(
        self, prediction: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return mean loss over the batch and its gradient."""

    def _check(self, prediction: np.ndarray, target: np.ndarray) -> None:
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} != target shape {target.shape}"
            )


class MeanSquaredError(Loss):
    """Mean squared error — the paper's environment-model objective (Eq. 2)."""

    name = "mse"

    def __call__(self, prediction, target):
        self._check(prediction, target)
        diff = prediction - target
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad


class HuberLoss(Loss):
    """Huber loss — robust alternative for critic training."""

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta!r}")
        self.delta = delta

    def __call__(self, prediction, target):
        self._check(prediction, target)
        diff = prediction - target
        abs_diff = np.abs(diff)
        quadratic = np.minimum(abs_diff, self.delta)
        linear = abs_diff - quadratic
        loss = float(np.mean(0.5 * quadratic**2 + self.delta * linear))
        grad = np.clip(diff, -self.delta, self.delta) / diff.size
        return loss, grad


_REGISTRY = {"mse": MeanSquaredError, "huber": HuberLoss}


def get_loss(name: str) -> Loss:
    """Look up a loss by name (``mse`` or ``huber``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {name!r}; known: {known}") from None
