"""Gradient-descent optimisers.

The optimisers operate on lists of (parameter, gradient) array pairs supplied
by :class:`repro.nn.network.MLP`, keeping per-parameter state (momentum /
Adam moments) keyed by position.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import isclose_zero

__all__ = ["Optimizer", "SGD", "Adam", "get_optimizer"]

ParamGrads = List[Tuple[np.ndarray, np.ndarray]]


class Optimizer(ABC):
    """Base optimiser; subclasses implement :meth:`step`."""

    name = "optimizer"

    def __init__(self, learning_rate: float = 1e-3, grad_clip: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate!r}")
        if grad_clip < 0:
            raise ValueError(f"grad_clip must be >= 0, got {grad_clip!r}")
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self._state: Dict[int, Dict[str, np.ndarray]] = {}
        self.iterations = 0

    def step(self, params_and_grads: ParamGrads) -> None:
        """Update every parameter array in place from its gradient."""
        self.iterations += 1
        if self.grad_clip:
            params_and_grads = self._clip(params_and_grads)
        for index, (param, grad) in enumerate(params_and_grads):
            if param.shape != grad.shape:
                raise ValueError(
                    f"param/grad shape mismatch at slot {index}: "
                    f"{param.shape} vs {grad.shape}"
                )
            self._update(index, param, grad)

    def _clip(self, params_and_grads: ParamGrads) -> ParamGrads:
        """Clip by global norm (TensorFlow-style clip_by_global_norm)."""
        total = np.sqrt(
            sum(float(np.sum(g * g)) for _, g in params_and_grads)
        )
        if total <= self.grad_clip or isclose_zero(total):
            return params_and_grads
        scale = self.grad_clip / total
        return [(p, g * scale) for p, g in params_and_grads]

    @abstractmethod
    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one update to ``param`` in place."""

    def reset(self) -> None:
        """Drop accumulated state (e.g. after re-initialising a network)."""
        self._state.clear()
        self.iterations = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    name = "sgd"

    def __init__(
        self,
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        grad_clip: float = 0.0,
    ):
        super().__init__(learning_rate, grad_clip)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum!r}")
        self.momentum = momentum

    def _update(self, index, param, grad):
        if self.momentum:
            state = self._state.setdefault(
                index, {"velocity": np.zeros_like(param)}
            )
            velocity = state["velocity"]
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) — default for all networks here."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        grad_clip: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(learning_rate, grad_clip)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must lie in [0, 1), got {beta1!r}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must lie in [0, 1), got {beta2!r}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon!r}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay!r}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay

    def _update(self, index, param, grad):
        state = self._state.setdefault(
            index, {"m": np.zeros_like(param), "v": np.zeros_like(param)}
        )
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1**self.iterations)
        v_hat = v / (1.0 - self.beta2**self.iterations)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        if self.weight_decay:
            # Decoupled (AdamW-style) decay: keeps logits from saturating.
            param -= self.learning_rate * self.weight_decay * param


_REGISTRY = {"sgd": SGD, "adam": Adam}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Look up an optimiser by name (``sgd`` or ``adam``)."""
    try:
        return _REGISTRY[name](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown optimizer {name!r}; known: {known}") from None
