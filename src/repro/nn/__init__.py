"""From-scratch numpy neural-network substrate.

The paper trains three kinds of small multilayer perceptrons with
TensorFlow: the environment (performance) model, the DDPG actor, and the
DDPG critic.  This package re-implements everything those networks need —
dense layers, activations, losses, optimisers, backpropagation, gradients
with respect to *inputs* (required by the deterministic policy gradient),
flattened parameter vectors (required by parameter-space exploration noise),
and soft target-network updates.
"""

from repro.nn.activations import (
    Activation,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)
from repro.nn.initializers import (
    constant_init,
    glorot_uniform,
    he_uniform,
    uniform_init,
)
from repro.nn.layers import Dense
from repro.nn.losses import HuberLoss, Loss, MeanSquaredError, get_loss
from repro.nn.network import MLP, soft_update
from repro.nn.serialization import load_mlp, save_mlp
from repro.nn.optimizers import SGD, Adam, Optimizer, get_optimizer

__all__ = [
    "Activation",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Linear",
    "get_activation",
    "Dense",
    "Loss",
    "MeanSquaredError",
    "HuberLoss",
    "get_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "get_optimizer",
    "MLP",
    "soft_update",
    "save_mlp",
    "load_mlp",
    "glorot_uniform",
    "he_uniform",
    "uniform_init",
    "constant_init",
]
