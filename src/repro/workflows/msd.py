"""Material Science Data (MSD) workflow ensemble.

The paper (Section VI-A1) states MSD "consists of 3 workflows — Type1 to
Type3 — and 4 task types" and cites the MONAD / elastic pub-sub papers
[26][27] where the workload is 4D material-science (TEM microscopy) image
processing.  The exact DAGs are not printed, so we reconstruct a faithful
ensemble that satisfies every constraint the paper does state:

- exactly 4 task types shared by 3 workflow types,
- workflows share microservices (the source of the cascading-effect
  challenge in Section II-C),
- processing is "long tail ... not very large" jobs — per-task service
  times of a few seconds so that the consumer budget C=14 is tight but
  feasible (Section VI-A4).

Stage names follow the TEM image-processing pipeline of [27]:
``Ingest`` (data registration / metadata extraction), ``Preprocess``
(denoise + align), ``Segment`` (feature segmentation), ``Analyze``
(statistics / visualisation products).
"""

from __future__ import annotations

from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType

__all__ = ["build_msd_ensemble", "MSD_TASKS", "MSD_WORKFLOWS"]

#: Task names in index order (dimension order of w(k) and m(k)).
MSD_TASKS = ("Ingest", "Preprocess", "Segment", "Analyze")

#: Workflow names in index order (dimension order of d(k)).
MSD_WORKFLOWS = ("Type1", "Type2", "Type3")


def build_msd_ensemble(service_time_scale: float = 1.0) -> WorkflowEnsemble:
    """Build the MSD ensemble.

    Parameters
    ----------
    service_time_scale:
        Multiplier on every mean service time; the default calibration keeps
        the paper's budget ``C=14`` tight-but-feasible under the evaluation
        arrival rates.
    """
    if service_time_scale <= 0:
        raise ValueError(
            f"service_time_scale must be positive, got {service_time_scale!r}"
        )
    scale = service_time_scale
    task_types = [
        TaskType("Ingest", 2.0 * scale, cv=0.4),
        TaskType("Preprocess", 4.0 * scale, cv=0.5),
        TaskType("Segment", 6.0 * scale, cv=0.6),
        TaskType("Analyze", 5.0 * scale, cv=0.5),
    ]
    workflow_types = [
        # Type1: straight segmentation pipeline.
        WorkflowType(
            "Type1",
            edges=[("Ingest", "Preprocess"), ("Preprocess", "Segment")],
        ),
        # Type2: straight analysis pipeline (shares Ingest/Preprocess).
        WorkflowType(
            "Type2",
            edges=[("Ingest", "Preprocess"), ("Preprocess", "Analyze")],
        ),
        # Type3: full pipeline with a parallel fork after Preprocess.
        WorkflowType(
            "Type3",
            edges=[
                ("Ingest", "Preprocess"),
                ("Preprocess", "Segment"),
                ("Preprocess", "Analyze"),
            ],
        ),
    ]
    return WorkflowEnsemble("MSD", task_types, workflow_types)
