"""Scientific-workflow ensembles: DAG model plus the paper's two workloads.

The paper evaluates on two "real-world scientific workflow computing
ensembles": Material Science Data processing (MSD — 3 workflow types over 4
task types) and LIGO (4 workflow types over 9 task types).  The exact DAG
topologies are not printed in the paper; :mod:`repro.workflows.msd` and
:mod:`repro.workflows.ligo` reconstruct them from the paper's own constraints
(type/task counts, shared microservices, the "Coire" task appearing in the
CAT/Full/Injection workflows) and the LIGO Inspiral characterisation of
Juve et al. [17].
"""

from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType
from repro.workflows.generator import random_ensemble
from repro.workflows.ligo import build_ligo_ensemble
from repro.workflows.msd import build_msd_ensemble
from repro.workflows.render import (
    render_dependency_table,
    render_ensemble,
    render_workflow,
)

__all__ = [
    "TaskType",
    "WorkflowType",
    "WorkflowEnsemble",
    "build_msd_ensemble",
    "build_ligo_ensemble",
    "random_ensemble",
    "render_workflow",
    "render_dependency_table",
    "render_ensemble",
]
