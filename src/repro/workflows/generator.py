"""Random layered-DAG ensemble generator.

Used by property-based tests (hypothesis strategies build on top of it) and
by the examples to demonstrate that MIRAS generalises beyond MSD/LIGO:
"this approach could also be easily adapted to other microservice systems"
(Section I).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.utils.rng import RngStream
from repro.utils.validation import check_positive
from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType

__all__ = ["random_ensemble", "random_workflow"]


def random_workflow(
    name: str,
    task_names: Tuple[str, ...],
    rng: RngStream,
    min_tasks: int = 2,
    edge_probability: float = 0.5,
) -> WorkflowType:
    """Sample a random DAG over a random subset of ``task_names``.

    The DAG is built over the subset in index order, adding each forward
    edge with ``edge_probability``; nodes that end up isolated are linked to
    their predecessor in the order, so the result is always connected enough
    to exercise the AND-join machinery.
    """
    if min_tasks < 1:
        raise ValueError(f"min_tasks must be >= 1, got {min_tasks}")
    if min_tasks > len(task_names):
        raise ValueError(
            f"min_tasks {min_tasks} exceeds available tasks {len(task_names)}"
        )
    size = int(rng.integers(min_tasks, len(task_names) + 1))
    chosen_idx = sorted(
        rng.choice(len(task_names), size=size, replace=False).tolist()
    )
    chosen = [task_names[i] for i in chosen_idx]
    edges: List[Tuple[str, str]] = []
    for i in range(len(chosen)):
        for j in range(i + 1, len(chosen)):
            if rng.uniform() < edge_probability:
                edges.append((chosen[i], chosen[j]))
    # Connect any node with no incident edge so the workflow is one piece.
    touched = {t for edge in edges for t in edge}
    for i, task in enumerate(chosen):
        if task not in touched and i > 0:
            edges.append((chosen[i - 1], task))
            touched.add(task)
            touched.add(chosen[i - 1])
    return WorkflowType(name, edges=edges, tasks=chosen)


def random_ensemble(
    num_task_types: int,
    num_workflow_types: int,
    seed: int = 0,
    rng: Optional[RngStream] = None,
    mean_service_range: Tuple[float, float] = (1.0, 6.0),
    edge_probability: float = 0.5,
) -> WorkflowEnsemble:
    """Sample a random workflow ensemble.

    Every task type is guaranteed to appear in at least one workflow (the
    generator retries until coverage holds), matching the paper's setting
    where the ``J`` task types are exactly the union over workflows.
    """
    check_positive("num_task_types", num_task_types)
    check_positive("num_workflow_types", num_workflow_types)
    if rng is None:
        import numpy as np

        rng = RngStream("ensemble", np.random.SeedSequence(seed))

    task_names = tuple(f"Task{i}" for i in range(num_task_types))
    low, high = mean_service_range
    if not 0 < low <= high:
        raise ValueError(f"bad mean_service_range {mean_service_range!r}")
    task_types = [
        TaskType(name, float(rng.uniform(low, high)), cv=float(rng.uniform(0.2, 0.8)))
        for name in task_names
    ]

    for attempt in range(50):
        workflows = [
            random_workflow(
                f"Workflow{i}",
                task_names,
                rng,
                min_tasks=min(2, num_task_types),
                edge_probability=edge_probability,
            )
            for i in range(num_workflow_types)
        ]
        covered = set().union(*(w.tasks for w in workflows))
        if covered == set(task_names):
            return WorkflowEnsemble(
                f"Random(J={num_task_types},N={num_workflow_types})",
                task_types,
                workflows,
            )
    # Deterministic fallback: add one chain workflow covering everything.
    workflows[-1] = WorkflowType(
        f"Workflow{num_workflow_types - 1}",
        edges=list(zip(task_names, task_names[1:])),
        tasks=task_names,
    )
    return WorkflowEnsemble(
        f"Random(J={num_task_types},N={num_workflow_types})",
        task_types,
        workflows,
    )
