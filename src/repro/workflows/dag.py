"""Workflow DAG model.

A *task type* is the unit that becomes a microservice (one request queue +
a consumer pool).  A *workflow type* is a DAG over a subset of the ensemble's
task types; requests of that workflow traverse the DAG with AND-join
semantics (a task becomes ready once **all** its predecessors in the same
workflow instance have completed — the paper's "wait for synchronization
signal").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["TaskType", "WorkflowType", "WorkflowEnsemble"]


@dataclass(frozen=True)
class TaskType:
    """A task type / microservice definition.

    Parameters
    ----------
    name:
        Unique task-type name within the ensemble.
    mean_service_time:
        Mean per-request processing time of one consumer, in seconds.
    cv:
        Coefficient of variation of the service time (lognormal sampling);
        the paper notes processing time varies with input data size.
    """

    name: str
    mean_service_time: float
    cv: float = 0.5

    def __post_init__(self):
        if not self.name:
            raise ValueError("task type name must be non-empty")
        check_positive("mean_service_time", self.mean_service_time)
        check_non_negative("cv", self.cv)


class WorkflowType:
    """A workflow type: a DAG over task-type names.

    Parameters
    ----------
    name:
        Workflow type name (e.g. ``Type1`` or ``CAT``).
    edges:
        ``(upstream, downstream)`` task-name pairs.
    tasks:
        All task names in the workflow.  Optional if every task appears in
        an edge; required for single-task workflows.
    """

    def __init__(
        self,
        name: str,
        edges: Iterable[Tuple[str, str]],
        tasks: Iterable[str] = (),
    ):
        if not name:
            raise ValueError("workflow type name must be non-empty")
        self.name = name
        self.edges: List[Tuple[str, str]] = list(edges)
        task_set = set(tasks)
        for up, down in self.edges:
            if up == down:
                raise ValueError(f"self-loop on task {up!r} in workflow {name!r}")
            task_set.add(up)
            task_set.add(down)
        if not task_set:
            raise ValueError(f"workflow {name!r} has no tasks")
        self.tasks: FrozenSet[str] = frozenset(task_set)

        self._successors: Dict[str, List[str]] = {t: [] for t in self.tasks}
        self._predecessors: Dict[str, List[str]] = {t: [] for t in self.tasks}
        seen = set()
        for up, down in self.edges:
            if (up, down) in seen:
                raise ValueError(
                    f"duplicate edge {up!r}->{down!r} in workflow {name!r}"
                )
            seen.add((up, down))
            self._successors[up].append(down)
            self._predecessors[down].append(up)

        self._order = self._topological_order()
        self.entry_tasks: Tuple[str, ...] = tuple(
            t for t in self._order if not self._predecessors[t]
        )
        self.exit_tasks: Tuple[str, ...] = tuple(
            t for t in self._order if not self._successors[t]
        )

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles."""
        in_degree = {t: len(self._predecessors[t]) for t in self.tasks}
        frontier = sorted(t for t, d in in_degree.items() if d == 0)
        order: List[str] = []
        while frontier:
            task = frontier.pop(0)
            order.append(task)
            for succ in self._successors[task]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    frontier.append(succ)
            frontier.sort()
        if len(order) != len(self.tasks):
            raise ValueError(f"workflow {self.name!r} contains a cycle")
        return order

    def successors(self, task: str) -> Tuple[str, ...]:
        """Tasks published when ``task`` completes (before AND-join check)."""
        self._check_task(task)
        return tuple(self._successors[task])

    def predecessors(self, task: str) -> Tuple[str, ...]:
        """Tasks that must complete before ``task`` becomes ready."""
        self._check_task(task)
        return tuple(self._predecessors[task])

    def topological_order(self) -> Tuple[str, ...]:
        """Tasks in a deterministic topological order."""
        return tuple(self._order)

    def critical_path_length(self, service_times: Mapping[str, float]) -> float:
        """Length of the longest path weighted by mean service times.

        Used by the HEFT baseline (upward ranks) and by capacity planning in
        the examples.
        """
        longest: Dict[str, float] = {}
        for task in reversed(self._order):
            succ_best = max(
                (longest[s] for s in self._successors[task]), default=0.0
            )
            longest[task] = service_times[task] + succ_best
        return max(longest[t] for t in self.entry_tasks)

    def _check_task(self, task: str) -> None:
        if task not in self.tasks:
            raise KeyError(f"task {task!r} not in workflow {self.name!r}")

    @property
    def size(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkflowType({self.name!r}, tasks={len(self.tasks)})"


@dataclass
class WorkflowEnsemble:
    """A named set of workflow types sharing a pool of task types.

    This corresponds to one of the paper's "workflow computing ensembles"
    (MSD or LIGO): the ``J`` task types become microservices, the ``N``
    workflow types define routing.
    """

    name: str
    task_types: Sequence[TaskType]
    workflow_types: Sequence[WorkflowType]
    _task_index: Dict[str, int] = field(init=False, repr=False)
    _workflow_index: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self):
        names = [t.name for t in self.task_types]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task types in ensemble {self.name!r}")
        wf_names = [w.name for w in self.workflow_types]
        if len(set(wf_names)) != len(wf_names):
            raise ValueError(f"duplicate workflow types in ensemble {self.name!r}")
        if not self.workflow_types:
            raise ValueError(f"ensemble {self.name!r} has no workflow types")
        known = set(names)
        for wf in self.workflow_types:
            missing = wf.tasks - known
            if missing:
                raise ValueError(
                    f"workflow {wf.name!r} references unknown task types "
                    f"{sorted(missing)}"
                )
        self._task_index = {n: i for i, n in enumerate(names)}
        self._workflow_index = {n: i for i, n in enumerate(wf_names)}

    # ------------------------------------------------------------------
    @property
    def num_task_types(self) -> int:
        """``J`` in the paper's notation."""
        return len(self.task_types)

    @property
    def num_workflow_types(self) -> int:
        """``N`` in the paper's notation."""
        return len(self.workflow_types)

    def task_index(self, name: str) -> int:
        """Stable index of a task type (the dimension in w(k)/m(k))."""
        try:
            return self._task_index[name]
        except KeyError:
            raise KeyError(f"unknown task type {name!r}") from None

    def workflow_index(self, name: str) -> int:
        """Stable index of a workflow type (the dimension in d(k))."""
        try:
            return self._workflow_index[name]
        except KeyError:
            raise KeyError(f"unknown workflow type {name!r}") from None

    def task(self, name: str) -> TaskType:
        return self.task_types[self.task_index(name)]

    def workflow(self, name: str) -> WorkflowType:
        return self.workflow_types[self.workflow_index(name)]

    def task_names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.task_types)

    def workflow_names(self) -> Tuple[str, ...]:
        return tuple(w.name for w in self.workflow_types)

    def mean_service_times(self) -> Dict[str, float]:
        return {t.name: t.mean_service_time for t in self.task_types}

    def service_demand(self, arrival_rates: Mapping[str, float]) -> Dict[str, float]:
        """Expected consumer-seconds per second demanded of each task type.

        ``arrival_rates`` maps workflow-type name to its request rate; each
        task in a workflow is visited exactly once per request (AND-join DAG),
        so demand is ``sum_i rate_i * mean_service_time_j`` over workflows
        containing task ``j``.  The baselines use this for capacity planning.
        """
        demand = {t.name: 0.0 for t in self.task_types}
        for wf in self.workflow_types:
            rate = arrival_rates.get(wf.name, 0.0)
            check_non_negative(f"arrival rate for {wf.name!r}", rate)
            for task in wf.tasks:
                demand[task] += rate * self.task(task).mean_service_time
        return demand

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkflowEnsemble({self.name!r}, J={self.num_task_types}, "
            f"N={self.num_workflow_types})"
        )
