"""LIGO workflow ensemble.

The paper (Section VI-A1) states LIGO "consists of 4 workflows — DataFind,
CAT, Full, and Injection — and 9 task types", citing the workflow
characterisation of Juve et al. [17].  Section VI-D additionally reveals that
a task named **Coire** appears in the CAT, Full, and Injection workflows.

We reconstruct the ensemble from the LIGO Inspiral analysis pipeline in
[17], whose task types are: ``DataFind`` (frame lookup), ``TmpltBank``
(template bank generation), ``Inspiral`` (matched filtering — the heavy
stage), ``Thinca`` (coincidence analysis), ``TrigBank`` (triggered bank),
``Sire`` (single-inspiral result), ``Coire`` (coincidence result), ``Inca``
(inspiral coincidence), and ``InspInj`` (injection generation).  The four
workflow types below satisfy every constraint stated in the paper:

- 9 task types total, each used by at least one workflow,
- Coire present in CAT, Full, and Injection (and not DataFind),
- Full is the most complex topology (the paper calls LIGO "a more
  complicated workflow" and evaluates it over 100 steps),
- heavy sharing of upstream stages (DataFind/TmpltBank/Inspiral), which
  produces the cascading effects MIRAS must learn.
"""

from __future__ import annotations

from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType

__all__ = ["build_ligo_ensemble", "LIGO_TASKS", "LIGO_WORKFLOWS"]

#: Task names in index order (dimension order of w(k) and m(k)).
LIGO_TASKS = (
    "DataFind",
    "TmpltBank",
    "Inspiral",
    "Thinca",
    "TrigBank",
    "Sire",
    "Coire",
    "Inca",
    "InspInj",
)

#: Workflow names in index order (dimension order of d(k)).
LIGO_WORKFLOWS = ("DataFind", "CAT", "Full", "Injection")


def build_ligo_ensemble(service_time_scale: float = 1.0) -> WorkflowEnsemble:
    """Build the LIGO ensemble.

    ``service_time_scale`` multiplies every mean service time; the default
    calibration keeps the paper's budget ``C=30`` tight-but-feasible.
    """
    if service_time_scale <= 0:
        raise ValueError(
            f"service_time_scale must be positive, got {service_time_scale!r}"
        )
    scale = service_time_scale
    # Mean service times follow the relative weights of the LIGO Inspiral
    # characterisation in [17]: Inspiral (matched filtering) dominates by
    # far; bank generation is the next heaviest; coincidence/result stages
    # are light.  Absolute values are compressed so a control window (30 s)
    # spans roughly one heavy task, keeping the bursts of Section VI-D a
    # genuinely hard allocation problem under C=30.
    task_types = [
        TaskType("DataFind", 4.5 * scale, cv=0.3),
        TaskType("TmpltBank", 9.0 * scale, cv=0.4),
        TaskType("Inspiral", 18.0 * scale, cv=0.6),
        TaskType("Thinca", 6.0 * scale, cv=0.4),
        TaskType("TrigBank", 4.5 * scale, cv=0.4),
        TaskType("Sire", 6.0 * scale, cv=0.5),
        TaskType("Coire", 7.5 * scale, cv=0.5),
        TaskType("Inca", 6.0 * scale, cv=0.4),
        TaskType("InspInj", 3.0 * scale, cv=0.3),
    ]
    workflow_types = [
        # DataFind: lightweight frame-lookup + template-bank workflow.
        WorkflowType(
            "DataFind",
            edges=[("DataFind", "TmpltBank")],
        ),
        # CAT: category-veto analysis ending in Coire.
        WorkflowType(
            "CAT",
            edges=[
                ("DataFind", "TmpltBank"),
                ("TmpltBank", "Inspiral"),
                ("Inspiral", "Thinca"),
                ("Thinca", "Coire"),
            ],
        ),
        # Full: the complete two-stage inspiral pipeline with fork/join.
        WorkflowType(
            "Full",
            edges=[
                ("DataFind", "TmpltBank"),
                ("TmpltBank", "Inspiral"),
                ("Inspiral", "Thinca"),
                ("Thinca", "TrigBank"),
                ("Thinca", "Sire"),
                ("TrigBank", "Coire"),
                ("Sire", "Coire"),
                ("Coire", "Inca"),
            ],
        ),
        # Injection: software-injection validation run.
        WorkflowType(
            "Injection",
            edges=[
                ("InspInj", "Inspiral"),
                ("Inspiral", "Thinca"),
                ("Thinca", "Sire"),
                ("Sire", "Coire"),
            ],
        ),
    ]
    return WorkflowEnsemble("LIGO", task_types, workflow_types)
