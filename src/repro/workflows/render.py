"""ASCII rendering of workflow DAGs (Fig. 2-style dependency tables).

No plotting dependencies — the renderer produces layered text diagrams and
the task-dependency table the paper's Fig. 2 shows, for docs, examples and
debugging.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workflows.dag import WorkflowEnsemble, WorkflowType

__all__ = ["render_workflow", "render_dependency_table", "render_ensemble"]


def _layers(workflow: WorkflowType) -> List[List[str]]:
    """Topological layering: layer i holds tasks whose longest incoming
    path has length i."""
    depth: Dict[str, int] = {}
    for task in workflow.topological_order():
        predecessors = workflow.predecessors(task)
        depth[task] = (
            0
            if not predecessors
            else 1 + max(depth[p] for p in predecessors)
        )
    layers: List[List[str]] = [[] for _ in range(max(depth.values()) + 1)]
    for task in workflow.topological_order():
        layers[depth[task]].append(task)
    return layers


def render_workflow(workflow: WorkflowType) -> str:
    """Layered ASCII diagram of one workflow DAG.

    Example output::

        Type3: Ingest
                 |
               Preprocess
                 |
               Segment | Analyze
    """
    lines = []
    layers = _layers(workflow)
    for i, layer in enumerate(layers):
        prefix = f"{workflow.name}: " if i == 0 else " " * (len(workflow.name) + 2)
        lines.append(prefix + " | ".join(layer))
        if i < len(layers) - 1:
            lines.append(" " * (len(workflow.name) + 2) + "v")
    return "\n".join(lines)


def render_dependency_table(workflow: WorkflowType) -> str:
    """The paper's Fig. 2 shape: one row per task with its successors."""
    rows = []
    header = f"workflow {workflow.name}"
    rows.append(header)
    rows.append("-" * len(header))
    for task in workflow.topological_order():
        successors = workflow.successors(task)
        target = ", ".join(successors) if successors else "(done)"
        rows.append(f"  {task} -> {target}")
    return "\n".join(rows)


def render_ensemble(ensemble: WorkflowEnsemble) -> str:
    """Summary of every workflow in an ensemble plus the shared task pool."""
    sections = [
        f"ensemble {ensemble.name}: J={ensemble.num_task_types} task types, "
        f"N={ensemble.num_workflow_types} workflow types",
        "task types: "
        + ", ".join(
            f"{t.name}({t.mean_service_time:g}s)" for t in ensemble.task_types
        ),
        "",
    ]
    for workflow in ensemble.workflow_types:
        sections.append(render_dependency_table(workflow))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"
