"""MIRAS reproduction: model-based RL for microservice resource allocation.

A from-scratch Python reproduction of Yang, Nguyen, Jin & Nahrstedt,
"MIRAS: Model-based Reinforcement Learning for Microservice Resource
Allocation over Scientific Workflows" (ICDCS 2019), including:

- the emulated microservice workflow infrastructure (:mod:`repro.sim`),
- the MSD and LIGO workflow ensembles (:mod:`repro.workflows`),
- workload generation (:mod:`repro.workload`),
- a from-scratch neural-network stack (:mod:`repro.nn`),
- DDPG with parameter-space exploration noise (:mod:`repro.rl`),
- MIRAS itself -- environment model, Lend-Giveback refinement, iterative
  model-based training (:mod:`repro.core`),
- the paper's comparison baselines (:mod:`repro.baselines`),
- the per-figure experiment harness (:mod:`repro.eval`).

Quickstart::

    from repro import quickstart_msd_agent
    agent, env = quickstart_msd_agent()
    print(agent.training_trace())
"""

from repro.core import MirasAgent, MirasConfig
from repro.sim import MicroserviceEnv, MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_ligo_ensemble, build_msd_ensemble

__version__ = "1.0.0"

__all__ = [
    "MirasAgent",
    "MirasConfig",
    "MicroserviceWorkflowSystem",
    "MicroserviceEnv",
    "SystemConfig",
    "build_msd_ensemble",
    "build_ligo_ensemble",
    "quickstart_msd_agent",
    "__version__",
]


def quickstart_msd_agent(seed: int = 0, fast: bool = True):
    """Build an MSD environment and train a MIRAS agent on it.

    Returns ``(agent, env)``.  With ``fast=True`` (default) the scaled-down
    schedule runs in seconds; ``fast=False`` runs the paper's schedule.
    """
    from repro.workload import MSD_BACKGROUND_RATES, PoissonArrivalProcess

    ensemble = build_msd_ensemble()
    system = MicroserviceWorkflowSystem(
        ensemble, SystemConfig(consumer_budget=14), seed=seed
    )
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    env = MicroserviceEnv(system)
    config = MirasConfig.msd_fast() if fast else MirasConfig.msd_paper()
    agent = MirasAgent(env, config, seed=seed)
    agent.iterate()
    return agent, env
