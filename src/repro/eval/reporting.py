"""ASCII and CSV reporting in the shape the paper presents its results."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Union

__all__ = [
    "format_table",
    "format_series_table",
    "format_comparison",
    "write_series_csv",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    series: Mapping[str, Sequence[float]],
    index_name: str = "step",
    title: Optional[str] = None,
) -> str:
    """Render several equal-length series as columns keyed by step.

    This is the textual form of a paper figure: one row per x-value, one
    column per plotted line.
    """
    names = list(series)
    if not names:
        raise ValueError("no series given")
    lengths = {len(series[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    headers = [index_name, *names]
    rows = [
        [step, *[series[name][step] for name in names]]
        for step in range(length)
    ]
    return format_table(headers, rows, title=title)


def format_comparison(
    results: Mapping[str, Mapping[str, object]],
    metric: str = "mean_response_time",
    title: Optional[str] = None,
) -> str:
    """Summarise a {scenario: {allocator: EvalResult}} comparison.

    ``metric`` is the name of a zero-argument EvalResult method.
    """
    scenarios = list(results)
    if not scenarios:
        raise ValueError("no scenarios given")
    allocators = list(results[scenarios[0]])
    headers = ["scenario", *allocators]
    rows = []
    for scenario in scenarios:
        row: List = [scenario]
        for allocator in allocators:
            result = results[scenario][allocator]
            row.append(getattr(result, metric)())
        rows.append(row)
    return format_table(headers, rows, title=title)


def write_series_csv(
    path: Union[str, Path],
    series: Mapping[str, Sequence[float]],
    index_name: str = "step",
) -> Path:
    """Write equal-length series as CSV (one column per series).

    This is the machine-readable counterpart of
    :func:`format_series_table` — e.g. for re-plotting a figure's data
    with external tooling.
    """
    names = list(series)
    if not names:
        raise ValueError("no series given")
    lengths = {len(series[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_name, *names])
        for step in range(length):
            writer.writerow([step, *[series[name][step] for name in names]])
    return path


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
