"""Sample-efficiency experiment: MIRAS vs model-free DDPG per interaction.

The paper's core argument (Sections I, III): model-based RL reaches a good
policy with far fewer *real-environment* interactions, because synthetic
model rollouts multiply each real sample.  The evaluation shows this
indirectly (model-free DDPG fails at the shared interaction budget of
Figs. 7–8); this experiment measures it directly as a learning curve —
policy quality as a function of real interactions consumed — which is the
natural extension plot for the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.sim.env import MicroserviceEnv
from repro.utils.rng import RngStream

__all__ = ["SampleEfficiencyResult", "sample_efficiency_curves"]


@dataclass
class SampleEfficiencyResult:
    """Learning curves keyed by agent name.

    ``curves[name]`` is a list of (real_interactions, eval_reward) points.
    """

    curves: Dict[str, List[tuple]] = field(default_factory=dict)

    def interactions(self, name: str) -> List[int]:
        return [point[0] for point in self.curves[name]]

    def rewards(self, name: str) -> List[float]:
        return [point[1] for point in self.curves[name]]

    def final_reward(self, name: str) -> float:
        return self.curves[name][-1][1]

    def auc(self, name: str) -> float:
        """Mean eval reward across checkpoints (area-under-curve proxy)."""
        return float(np.mean(self.rewards(name)))


def _evaluate_greedy(
    env: MicroserviceEnv,
    act_greedy,
    steps: int,
    burst_scale: float,
) -> float:
    """Aggregated reward of a greedy policy over one burst episode."""
    env.reset()
    if burst_scale > 0:
        names = env.system.ensemble.workflow_names()
        per_type = int(burst_scale * env.consumer_budget / len(names))
        if per_type:
            env.system.inject_burst({n: per_type for n in names})
    state = env.observe()
    total = 0.0
    for _ in range(steps):
        simplex = act_greedy(state)
        allocation = env.allocation_from_simplex(simplex)
        state, reward, _ = env.step(allocation)
        total += reward
    return total


def sample_efficiency_curves(
    env_factory,
    config: MirasConfig,
    checkpoints: int = 4,
    eval_steps: int = 20,
    eval_burst_scale: float = 10.0,
    seed: int = 0,
) -> SampleEfficiencyResult:
    """Learning curves for MIRAS and vanilla model-free DDPG.

    ``env_factory(seed)`` builds a fresh environment.  Both agents are
    evaluated after each of ``checkpoints`` equal slices of the total real
    -interaction budget (``config.steps_per_iteration * config.iterations``),
    on an identical burst episode.
    """
    if checkpoints < 1:
        raise ValueError(f"checkpoints must be >= 1, got {checkpoints}")
    result = SampleEfficiencyResult(curves={"miras": [], "modelfree": []})
    total_budget = config.steps_per_iteration * config.iterations
    slice_size = max(1, total_budget // checkpoints)

    # --- MIRAS: one Algorithm-2 iteration per checkpoint slice ----------
    miras_env = env_factory(seed)
    agent = MirasAgent(miras_env, config, seed=seed)
    consumed = 0
    for checkpoint in range(checkpoints):
        agent.collect_real_interactions(
            slice_size, random_fraction=1.0 if checkpoint == 0 else 0.0
        )
        consumed += slice_size
        agent.train_model()
        agent.train_policy()
        reward = _evaluate_greedy(
            miras_env, agent.ddpg.act_greedy, eval_steps, eval_burst_scale
        )
        result.curves["miras"].append((consumed, reward))

    # --- Vanilla model-free DDPG (action-space noise) ---------------------
    mf_env = env_factory(seed + 1)
    vanilla = DDPGConfig(
        hidden_sizes=config.policy.ddpg.hidden_sizes,
        batch_size=config.policy.ddpg.batch_size,
        gamma=config.policy.ddpg.gamma,
        exploration="action-gaussian",
        entropy_weight=0.0,
    )
    mf_agent = DDPGAgent(
        mf_env.state_dim,
        mf_env.action_dim,
        config=vanilla,
        rng=RngStream("mf", np.random.SeedSequence(seed + 1)),
    )
    consumed = 0
    state = mf_env.reset()
    for checkpoint in range(checkpoints):
        for step in range(slice_size):
            if step > 0 and step % config.reset_interval == 0:
                state = mf_env.reset()
            simplex = mf_agent.act(state, explore=True)
            executed = mf_env.allocation_from_simplex(simplex)
            next_state, reward, _ = mf_env.step(executed)
            mf_agent.store(
                state, executed / mf_env.consumer_budget, reward, next_state
            )
            if len(mf_agent.replay) >= vanilla.batch_size:
                mf_agent.update()
            state = next_state
        consumed += slice_size
        reward = _evaluate_greedy(
            mf_env, mf_agent.act_greedy, eval_steps, eval_burst_scale
        )
        result.curves["modelfree"].append((consumed, reward))
        state = mf_env.reset()
    return result
