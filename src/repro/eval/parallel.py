"""Parallel experiment runner: a process map over (experiment, seed) cells.

Figures 5–8 and the ablations are embarrassingly parallel — every cell
builds its own system and agent from an explicit seed — so this module
fans a grid of :class:`ExperimentCell`\\ s over a ``ProcessPoolExecutor``.

Determinism contract (pinned by tests/eval/test_parallel_runner.py):

- every cell's RNG seed is derived *from the cell's label* and the grid's
  root seed (:func:`derive_cell_seed`), never from worker identity,
  scheduling, or completion order;
- results are assembled keyed by label in input-cell order and serialised
  with sorted keys, so the output JSON is byte-identical for any worker
  count — ``workers=4`` reproduces ``workers=1`` reproduces the in-process
  serial path exactly.

Fleet telemetry (``telemetry_dir``): each cell captures its own trace
and metrics snapshot under ``<telemetry_dir>/<label>/`` (the worker owns
the files — no cross-process handles), and the parent merges them in
sorted-label order via :mod:`repro.telemetry.fleet`.  Because traces are
a pure function of (root seed, label), the merged artifacts inherit the
worker-count independence above.
"""

from __future__ import annotations

import dataclasses
import json
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.eval.experiments import EXPERIMENTS
from repro.utils.rng import derive_stream_seed

__all__ = [
    "ExperimentCell",
    "derive_cell_seed",
    "to_jsonable",
    "default_cells",
    "run_cells",
    "results_to_json",
    "write_results",
    "QUICK_PARAMS",
]

#: Reduced per-experiment schedules for CI, benchmarks and smoke runs.
#: Same code paths as the defaults, just small enough to finish in
#: seconds per cell.
QUICK_PARAMS: Dict[str, Dict] = {
    "fig5": {
        "collect_steps": 24,
        "test_steps": 8,
        "action_hold": 2,
        "model_epochs": 2,
    },
    "fig7": {"steps": 3},
    "fig8": {"steps": 3},
    "ablate-refinement": {"collect_steps": 24, "test_steps": 8},
    "ablate-window": {"window_lengths": (15.0, 30.0), "steps_at_30s": 2},
}


@dataclasses.dataclass(frozen=True)
class ExperimentCell:
    """One (experiment, replicate) grid cell with optional overrides."""

    experiment: str
    replicate: int = 0
    #: Keyword overrides for the experiment entry point, as a sorted
    #: tuple of (name, value) pairs so cells stay hashable and picklable.
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.experiment not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise ValueError(
                f"unknown experiment {self.experiment!r}; known: {known}"
            )
        if self.replicate < 0:
            raise ValueError(f"replicate must be >= 0, got {self.replicate}")

    @property
    def label(self) -> str:
        """Stable cell identity; the only input to the cell's RNG seed."""
        return f"{self.experiment}/rep{self.replicate}"

    @classmethod
    def make(
        cls, experiment: str, replicate: int = 0, params: Optional[Dict] = None
    ) -> "ExperimentCell":
        return cls(
            experiment,
            replicate,
            tuple(sorted((params or {}).items())),
        )


def derive_cell_seed(root_seed: int, label: str) -> int:
    """Deterministic per-cell seed keyed by (root seed, cell label).

    Delegates to :func:`repro.utils.rng.derive_stream_seed` — the shared
    label-keyed derivation primitive (no ``hash()``, no dependence on
    cell order), so any scheduling of cells over workers derives the
    same seed.
    """
    return derive_stream_seed(root_seed, label)


def to_jsonable(obj):
    """Recursively convert experiment results to JSON-encodable values.

    Handles the shapes the registry produces: dataclasses (Fig5Result,
    IterationResult, EvalResult/StepRecord via their ``to_jsonable``),
    numpy arrays and scalars, and nested dict/list/tuple containers.
    Non-string dict keys become their ``repr``-style JSON string.
    """
    if hasattr(obj, "to_jsonable"):
        return to_jsonable(obj.to_jsonable())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {
            (key if isinstance(key, str) else repr(key)): to_jsonable(value)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    return obj


def default_cells(
    experiments: Sequence[str] = ("fig5", "fig6", "fig7", "fig8"),
    replicates: int = 1,
    quick: bool = False,
) -> List[ExperimentCell]:
    """The standard grid: each experiment x ``replicates`` cells."""
    if replicates <= 0:
        raise ValueError(f"replicates must be positive, got {replicates}")
    cells = []
    for name in experiments:
        params = QUICK_PARAMS.get(name, {}) if quick else {}
        for replicate in range(replicates):
            cells.append(ExperimentCell.make(name, replicate, params))
    return cells


def _execute_cell(
    spec: Tuple[str, int, Tuple[Tuple[str, object], ...], int, Optional[str]]
) -> Dict:
    """Run one cell (module-level so worker processes can unpickle it).

    With a telemetry directory the worker captures its own trace and
    metrics files under ``<telemetry_dir>/<label>/`` — per-cell capture
    keeps worker processes free of shared handles, and the files are a
    pure function of (root seed, label), not of worker identity.
    """
    experiment, replicate, params, root_seed, telemetry_dir = spec
    cell = ExperimentCell(experiment, replicate, params)
    seed = derive_cell_seed(root_seed, cell.label)
    if telemetry_dir is None:
        result = EXPERIMENTS[experiment](seed=seed, **dict(params))
    else:
        from repro.telemetry.fleet import TRACE_FILENAME
        from repro.telemetry.metrics import MetricsSink, write_metrics
        from repro.telemetry.sinks import JsonlSink
        from repro.telemetry.tracer import Tracer

        cell_dir = Path(telemetry_dir) / cell.label
        cell_dir.mkdir(parents=True, exist_ok=True)
        sink = MetricsSink(JsonlSink(cell_dir / TRACE_FILENAME))
        with Tracer(sink) as tracer:
            result = EXPERIMENTS[experiment](
                seed=seed, tracer=tracer, **dict(params)
            )
        write_metrics(cell_dir, sink)
    return {
        "experiment": experiment,
        "replicate": replicate,
        "seed": seed,
        "result": to_jsonable(result),
    }


def run_cells(
    cells: Sequence[ExperimentCell],
    root_seed: int = 0,
    workers: int = 1,
    telemetry_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Dict]:
    """Run every cell; returns ``{label: payload}`` in input-cell order.

    ``workers=1`` (or a single cell) runs in-process; larger counts fan
    out over a ``ProcessPoolExecutor``; ``workers=0`` auto-detects
    ``os.cpu_count()`` (falling back to 1 when the count is unknown).
    All paths execute the same ``_execute_cell`` function with the same
    derived seeds, so the returned mapping is identical regardless of
    worker count.

    ``telemetry_dir`` switches on fleet telemetry: per-cell trace and
    metrics capture in the workers, then a sorted-label merge in the
    parent (``fleet_metrics.json``/``.prom`` + ``fleet_manifest.json``).
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    labels = [cell.label for cell in cells]
    if len(set(labels)) != len(labels):
        raise ValueError("duplicate cell labels in the grid")
    telemetry = None if telemetry_dir is None else str(telemetry_dir)
    specs = [
        (cell.experiment, cell.replicate, cell.params, root_seed, telemetry)
        for cell in cells
    ]
    if workers == 1 or len(specs) <= 1:
        payloads = [_execute_cell(spec) for spec in specs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # executor.map yields in *input* order no matter which worker
            # finishes first — completion order cannot leak into results.
            payloads = list(pool.map(_execute_cell, specs))
    if telemetry is not None:
        from repro.telemetry.fleet import merge_fleet, write_fleet

        write_fleet(telemetry, merge_fleet(telemetry))
    return dict(zip(labels, payloads))


def results_to_json(results: Dict[str, Dict]) -> str:
    """Canonical serialisation (sorted keys, stable float repr)."""
    return json.dumps(results, indent=2, sort_keys=True) + "\n"


def write_results(path: Union[str, Path], results: Dict[str, Dict]) -> Path:
    """Write the canonical JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_json(results), encoding="utf-8")
    return path
