"""Experiment definitions — one per paper figure, plus ablations.

Every experiment runs the same code path as the paper's full-scale setup;
the ``scale`` parameter only changes step counts (documented in DESIGN.md)
so the suite finishes in minutes instead of cluster-days.  Pass
``scale="paper"`` for the full schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    Allocator,
    DrsAllocator,
    HeftAllocator,
    MirasAllocator,
    ModelFreeDDPGAllocator,
    MonadAllocator,
)
from repro.core import (
    EnvironmentModel,
    MirasAgent,
    MirasConfig,
    RefinedModel,
    TransitionDataset,
)
from repro.core.agent import IterationResult
from repro.eval.runner import EvalResult, make_env, run_scenario_comparison
from repro.rl.ddpg import DDPGConfig
from repro.sim.env import MicroserviceEnv
from repro.sim.system import SystemConfig
from repro.utils.rng import RngStream
from repro.workflows import build_ligo_ensemble, build_msd_ensemble
from repro.workload.bursts import (
    BurstScenario,
    LIGO_BACKGROUND_RATES,
    LIGO_BURSTS,
    MSD_BACKGROUND_RATES,
    MSD_BURSTS,
)

__all__ = [
    "EXPERIMENTS",
    "Fig5Result",
    "build_training_env",
    "dataset_preset",
    "experiment_fig5_model_accuracy",
    "experiment_fig6_training_trace",
    "experiment_fig7_msd_comparison",
    "experiment_fig8_ligo_comparison",
    "ablation_refinement",
    "ablation_exploration_noise",
    "ablation_window_length",
]


# ---------------------------------------------------------------------------
# Shared setup helpers
# ---------------------------------------------------------------------------

_PRESETS = {
    "msd": {
        "builder": build_msd_ensemble,
        "budget": 14,
        "rates": MSD_BACKGROUND_RATES,
        "bursts": MSD_BURSTS,
        "model_hidden": (20, 20, 20),
        "fast_config": MirasConfig.msd_fast,
        "paper_config": MirasConfig.msd_paper,
    },
    "ligo": {
        "builder": build_ligo_ensemble,
        "budget": 30,
        "rates": LIGO_BACKGROUND_RATES,
        "bursts": LIGO_BURSTS,
        "model_hidden": (20,),
        "fast_config": MirasConfig.ligo_fast,
        "paper_config": MirasConfig.ligo_paper,
    },
}


def dataset_preset(name: str) -> dict:
    """Configuration preset for ``msd`` or ``ligo``."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def _training_env(name: str, seed: int, tracer=None) -> MicroserviceEnv:
    preset = dataset_preset(name)
    return make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=seed,
        background_rates=preset["rates"],
        tracer=tracer,
    )


def build_training_env(seed: int, dataset: str = "msd") -> MicroserviceEnv:
    """Standalone training-environment factory for worker processes.

    The distributed collector (``repro.rl.distributed``) replicates the
    training environment inside each collector process from an
    :class:`~repro.rl.distributed.EnvSpec` recipe — a ``"module:callable"``
    string plus keyword params — so this must stay a *module-level*
    callable taking only picklable arguments (reprolint W101): use
    ``EnvSpec.make("repro.eval.experiments:build_training_env",
    dataset="msd")``.  Replicas are untraced: each worker's transition
    block carries its own deterministic bookkeeping instead.
    """
    return _training_env(dataset, seed)


def _collect_random_dataset(
    env: MicroserviceEnv,
    steps: int,
    rng: RngStream,
    action_hold: int = 4,
    reset_interval: int = 25,
    record_order: bool = False,
) -> Tuple[TransitionDataset, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Random-action data collection (the paper's model-evaluation protocol).

    "Actions are randomly selected and vary every 4 steps" (Section VI-B).
    Returns the dataset and, when asked, the ordered trace of transitions.
    """
    dataset = TransitionDataset(env.state_dim, env.action_dim)
    trace: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    state = env.reset()
    action = env.random_allocation(rng)
    for step in range(steps):
        if reset_interval and step > 0 and step % reset_interval == 0:
            state = env.reset()
        if step % action_hold == 0:
            action = env.random_allocation(rng)
        next_state, _, _ = env.step(action)
        dataset.add(state, action.astype(np.float64), next_state)
        if record_order:
            trace.append((state.copy(), action.copy(), next_state.copy()))
        state = next_state
    return dataset, trace


# ---------------------------------------------------------------------------
# Fig. 5 — predictive-model accuracy
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    """Ground truth vs fixed-input vs iterative predictions (Fig. 5).

    The paper plots two signals per dataset: the "immediate reward
    (average of next state WIP)" and the first WIP dimension.
    """

    dataset: str
    ground_truth_reward: np.ndarray
    fixed_reward: np.ndarray
    iterative_reward: np.ndarray
    ground_truth_w0: np.ndarray
    fixed_w0: np.ndarray
    iterative_w0: np.ndarray

    @staticmethod
    def _rmse(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.sqrt(np.mean((a - b) ** 2)))

    @property
    def rmse_fixed_reward(self) -> float:
        return self._rmse(self.ground_truth_reward, self.fixed_reward)

    @property
    def rmse_iterative_reward(self) -> float:
        return self._rmse(self.ground_truth_reward, self.iterative_reward)

    @property
    def rmse_fixed_w0(self) -> float:
        return self._rmse(self.ground_truth_w0, self.fixed_w0)

    @property
    def rmse_iterative_w0(self) -> float:
        return self._rmse(self.ground_truth_w0, self.iterative_w0)

    def correlation_fixed_reward(self) -> float:
        """Pearson correlation of the fixed-input trace with ground truth."""
        if np.std(self.ground_truth_reward) == 0 or np.std(self.fixed_reward) == 0:
            return 0.0
        return float(
            np.corrcoef(self.ground_truth_reward, self.fixed_reward)[0, 1]
        )

    def correlation_iterative_reward(self) -> float:
        if (
            np.std(self.ground_truth_reward) == 0
            or np.std(self.iterative_reward) == 0
        ):
            return 0.0
        return float(
            np.corrcoef(self.ground_truth_reward, self.iterative_reward)[0, 1]
        )


def experiment_fig5_model_accuracy(
    dataset: str = "msd",
    collect_steps: int = 600,
    test_steps: int = 100,
    action_hold: int = 4,
    seed: int = 0,
    model_epochs: int = 60,
    tracer=None,
) -> Fig5Result:
    """Reproduce Fig. 5 for one dataset.

    Paper scale: ``collect_steps=14_000`` (MSD) / ``37_000`` (LIGO),
    ``test_steps=100``.  The default scales collection down; the protocol
    (random actions held 4 steps, fixed vs iterative prediction on a held
    -out trace) is identical.
    """
    preset = dataset_preset(dataset)
    env = _training_env(dataset, seed, tracer=tracer)
    rng = RngStream("fig5", np.random.SeedSequence(seed))

    train_data, _ = _collect_random_dataset(
        env, collect_steps, rng.fork("fig5/train"), action_hold=action_hold
    )
    model = EnvironmentModel(
        env.state_dim,
        env.action_dim,
        hidden_sizes=preset["model_hidden"],
        rng=rng.fork("fig5/model"),
    )
    model.fit(train_data, epochs=model_epochs)

    # Held-out trace: one continuous run (no resets) for the iterative test.
    _, trace = _collect_random_dataset(
        env,
        test_steps,
        rng.fork("fig5/test"),
        action_hold=action_hold,
        reset_interval=0,
        record_order=True,
    )
    states = np.stack([t[0] for t in trace])
    actions = np.stack([t[1] for t in trace])
    next_states = np.stack([t[2] for t in trace])

    fixed = np.maximum(model.predict(states, actions), 0.0)
    iterative = model.rollout(states[0], actions)

    return Fig5Result(
        dataset=dataset,
        ground_truth_reward=next_states.mean(axis=1),
        fixed_reward=fixed.mean(axis=1),
        iterative_reward=iterative.mean(axis=1),
        ground_truth_w0=next_states[:, 0],
        fixed_w0=fixed[:, 0],
        iterative_w0=iterative[:, 0],
    )


# ---------------------------------------------------------------------------
# Fig. 6 — MIRAS training traces
# ---------------------------------------------------------------------------

def experiment_fig6_training_trace(
    dataset: str = "msd",
    config: Optional[MirasConfig] = None,
    seed: int = 0,
    verbose: bool = False,
    tracer=None,
) -> List[IterationResult]:
    """Reproduce Fig. 6a/6b: aggregated evaluation reward per iteration.

    Paper scale: pass ``config=MirasConfig.msd_paper()`` (or
    ``ligo_paper()``).  Default: the fast preset with the same schedule
    shape (converges within the configured iterations).
    """
    preset = dataset_preset(dataset)
    env = _training_env(dataset, seed, tracer=tracer)
    config = config or preset["fast_config"]()
    agent = MirasAgent(env, config, seed=seed)
    agent.iterate(verbose=verbose)
    return agent.results


# ---------------------------------------------------------------------------
# Figs. 7–8 — comparison with existing algorithms
# ---------------------------------------------------------------------------

def _build_comparison_allocators(
    dataset: str,
    config: MirasConfig,
    seed: int,
    tracer=None,
) -> List[Allocator]:
    """Train MIRAS + fair-budget baselines; return all five allocators.

    Interaction-budget fairness (Section VI-D): model-free DDPG gets the
    same number of real interactions as MIRAS; MONAD is identified on the
    very dataset MIRAS collected.  ``tracer`` instruments the *primary*
    (MIRAS) training environment only — baseline training runs stay
    untraced so the comparison traces one system per cell.
    """
    train_env = _training_env(dataset, seed, tracer=tracer)
    miras_agent = MirasAgent(train_env, config, seed=seed)
    miras_agent.iterate()
    total_interactions = config.steps_per_iteration * config.iterations

    # The paper's "rl" baseline is *vanilla* DDPG (OpenAI Baselines):
    # action-space exploration noise, no MIRAS-side regularisation, and the
    # paper's plain interaction protocol (reset every 25 steps, background
    # workload only).  The burst-seeded collection curriculum is part of
    # MIRAS's data-coverage machinery, not the baseline — giving it to the
    # baseline materially changes the comparison (see EXPERIMENTS.md).
    vanilla = replace(
        config.policy.ddpg,
        exploration="action-gaussian",
        entropy_weight=0.0,
    )
    modelfree = ModelFreeDDPGAllocator(
        training_steps=total_interactions,
        reset_interval=config.reset_interval,
        config=vanilla,
        seed=seed + 1,
        burst_probability=0.0,
    )
    modelfree.prepare(_training_env(dataset, seed + 1))

    monad = MonadAllocator()
    monad.fit_from_dataset(train_env, miras_agent.dataset)

    return [
        MirasAllocator(agent=miras_agent),
        DrsAllocator(),
        HeftAllocator(),
        monad,
        modelfree,
    ]


def _comparison(
    dataset: str,
    scenarios: Sequence[BurstScenario],
    steps: int,
    config: Optional[MirasConfig],
    seed: int,
    eval_seed: int,
    tracer=None,
) -> Dict[str, Dict[str, EvalResult]]:
    preset = dataset_preset(dataset)
    config = config or preset["fast_config"]()
    allocators = _build_comparison_allocators(
        dataset, config, seed, tracer=tracer
    )
    system_config = SystemConfig(consumer_budget=preset["budget"])
    results: Dict[str, Dict[str, EvalResult]] = {}
    for scenario in scenarios:
        results[scenario.name] = run_scenario_comparison(
            preset["builder"],
            allocators,
            scenario,
            steps=steps,
            config=system_config,
            eval_seed=eval_seed,
        )
    return results


def experiment_fig7_msd_comparison(
    steps: int = 30,
    config: Optional[MirasConfig] = None,
    scenarios: Optional[Sequence[BurstScenario]] = None,
    seed: int = 0,
    eval_seed: int = 1000,
    tracer=None,
) -> Dict[str, Dict[str, EvalResult]]:
    """Fig. 7: MSD response time under the three burst conditions.

    Returns ``{scenario: {allocator: EvalResult}}``.  Paper scale: pass
    ``config=MirasConfig.msd_paper()`` and ``steps`` ~ the paper's horizon.
    """
    return _comparison(
        "msd", scenarios or MSD_BURSTS, steps, config, seed, eval_seed,
        tracer=tracer,
    )


def experiment_fig8_ligo_comparison(
    steps: int = 30,
    config: Optional[MirasConfig] = None,
    scenarios: Optional[Sequence[BurstScenario]] = None,
    seed: int = 0,
    eval_seed: int = 1000,
    tracer=None,
) -> Dict[str, Dict[str, EvalResult]]:
    """Fig. 8: LIGO response time under the three burst conditions."""
    return _comparison(
        "ligo", scenarios or LIGO_BURSTS, steps, config, seed, eval_seed,
        tracer=tracer,
    )


# ---------------------------------------------------------------------------
# Ablations (design choices called out in Sections IV and VI-A)
# ---------------------------------------------------------------------------

def ablation_refinement(
    dataset: str = "msd",
    collect_steps: int = 600,
    test_steps: int = 200,
    percentile: float = 20.0,
    seed: int = 0,
    tracer=None,
) -> Dict[str, float]:
    """Lend–Giveback on/off: one-step error near the WIP boundary.

    Measures RMSE of raw vs refined predictions on held-out transitions
    whose state has at least one dimension below tau (the regime Algorithm
    1 targets) and on the complementary set.
    """
    preset = dataset_preset(dataset)
    env = _training_env(dataset, seed, tracer=tracer)
    rng = RngStream("ablate-refine", np.random.SeedSequence(seed))
    train_data, _ = _collect_random_dataset(
        env, collect_steps, rng.fork("ablate-refine/train")
    )
    model = EnvironmentModel(
        env.state_dim,
        env.action_dim,
        hidden_sizes=preset["model_hidden"],
        rng=rng.fork("ablate-refine/model"),
    )
    model.fit(train_data, epochs=60)
    refined = RefinedModel.from_dataset(
        model, train_data, percentile=percentile,
        rng=rng.fork("ablate-refine/refine"),
    )

    test_data, trace = _collect_random_dataset(
        env, test_steps, rng.fork("ablate-refine/test"), record_order=True
    )
    boundary_raw, boundary_refined = [], []
    interior_raw, interior_refined = [], []
    for state, action, next_state in trace:
        raw_error = np.maximum(model.predict(state, action), 0.0) - next_state
        refined_error = refined.predict(state, action) - next_state
        if np.any(refined.below_threshold(state)):
            boundary_raw.append(raw_error)
            boundary_refined.append(refined_error)
        else:
            interior_raw.append(raw_error)
            interior_refined.append(refined_error)

    def rmse(errors: list) -> float:
        if not errors:
            return float("nan")
        return float(np.sqrt(np.mean(np.stack(errors) ** 2)))

    return {
        "boundary_rmse_raw": rmse(boundary_raw),
        "boundary_rmse_refined": rmse(boundary_refined),
        "interior_rmse_raw": rmse(interior_raw),
        "interior_rmse_refined": rmse(interior_refined),
        "boundary_samples": float(len(boundary_raw)),
        "interior_samples": float(len(interior_raw)),
    }


def ablation_exploration_noise(
    dataset: str = "msd",
    config: Optional[MirasConfig] = None,
    seed: int = 0,
    tracer=None,
) -> Dict[str, Dict[str, float]]:
    """Parameter-space vs action-space exploration (Section IV-D claim).

    Trains one MIRAS agent per exploration mode with identical budgets and
    reports constraint violations during exploration plus the final
    real-environment evaluation reward.
    """
    preset = dataset_preset(dataset)
    base_config = config or preset["fast_config"]()
    out: Dict[str, Dict[str, float]] = {}
    for mode in ("parameter", "action-gaussian"):
        env = _training_env(dataset, seed, tracer=tracer)
        mode_config = MirasConfig(
            model=base_config.model,
            policy=type(base_config.policy)(
                ddpg=DDPGConfig(
                    hidden_sizes=base_config.policy.ddpg.hidden_sizes,
                    batch_size=base_config.policy.ddpg.batch_size,
                    exploration=mode,
                ),
                rollout_length=base_config.policy.rollout_length,
                rollouts_per_iteration=base_config.policy.rollouts_per_iteration,
                patience=base_config.policy.patience,
            ),
            steps_per_iteration=base_config.steps_per_iteration,
            reset_interval=base_config.reset_interval,
            iterations=base_config.iterations,
            eval_steps=base_config.eval_steps,
        )
        agent = MirasAgent(env, mode_config, seed=seed)
        agent.iterate()
        out[mode] = {
            "constraint_violations": float(agent.ddpg.constraint_violations),
            "exploration_actions": float(agent.ddpg.exploration_actions),
            "final_eval_reward": agent.results[-1].eval_reward,
            "best_eval_reward": max(r.eval_reward for r in agent.results),
        }
    return out


def ablation_window_length(
    dataset: str = "msd",
    window_lengths: Sequence[float] = (5.0, 15.0, 30.0),
    steps_at_30s: int = 30,
    seed: int = 0,
    tracer=None,
) -> Dict[float, Dict[str, float]]:
    """Section VI-A2's window-length trade-off (5 s / 15 s / 30 s).

    Runs a reactive WIP-proportional allocator on burst 1 with each window
    length over the same total simulated time; reports the mean response
    time and the container churn (kills of busy consumers, the start-up
    overhead proxy).
    """
    from repro.baselines.static_alloc import ProportionalToWipAllocator
    from repro.eval.runner import evaluate_allocator

    preset = dataset_preset(dataset)
    scenario = preset["bursts"][0]
    total_time = 30.0 * steps_at_30s
    out: Dict[float, Dict[str, float]] = {}
    for window in window_lengths:
        env = make_env(
            preset["builder"](),
            config=SystemConfig(
                consumer_budget=preset["budget"], window_length=window
            ),
            seed=seed,
            background_rates=preset["rates"],
            tracer=tracer,
        )
        steps = max(1, int(round(total_time / window)))
        allocator = ProportionalToWipAllocator()
        result = evaluate_allocator(allocator, env, scenario, steps)
        services = env.system.microservices.values()
        busy_kills = sum(ms.consumers_killed_busy for ms in services)
        wasted_startups = sum(ms.consumers_killed_starting for ms in services)
        out[window] = {
            "mean_response_time": result.mean_response_time(),
            "final_wip": result.wip_series()[-1],
            "busy_kills": float(busy_kills),
            "wasted_startups": float(wasted_startups),
            "total_completions": float(result.total_completions()),
            "steps": float(steps),
        }
    return out


# ---------------------------------------------------------------------------
# Experiment registry (consumed by repro.eval.parallel and the CLI)
# ---------------------------------------------------------------------------

#: Name -> experiment entry point.  Every entry point is self-contained:
#: it builds its own system/agent from an explicit ``seed`` argument, so
#: a registry cell can run in any process with no shared state.
EXPERIMENTS = {
    "fig5": experiment_fig5_model_accuracy,
    "fig6": experiment_fig6_training_trace,
    "fig7": experiment_fig7_msd_comparison,
    "fig8": experiment_fig8_ligo_comparison,
    "ablate-refinement": ablation_refinement,
    "ablate-noise": ablation_exploration_noise,
    "ablate-window": ablation_window_length,
}
