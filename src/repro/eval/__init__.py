"""Experiment harness: one entry point per paper figure, plus ablations.

- :mod:`repro.eval.runner` — run any allocator on a burst scenario and
  record per-window series,
- :mod:`repro.eval.experiments` — Fig. 5 (model accuracy), Fig. 6
  (training traces), Figs. 7–8 (algorithm comparisons) and the ablations,
  each with paper-scale and scaled-down parameter sets,
- :mod:`repro.eval.reporting` — ASCII tables/series in the shape the paper
  reports,
- :mod:`repro.eval.parallel` — process-parallel map over experiment cells
  with label-derived seeds (byte-identical to the serial runner).
"""

from repro.eval.runner import (
    EvalResult,
    StepRecord,
    evaluate_allocator,
    make_env,
    run_scenario_comparison,
)
from repro.eval.experiments import (
    Fig5Result,
    experiment_fig5_model_accuracy,
    experiment_fig6_training_trace,
    experiment_fig7_msd_comparison,
    experiment_fig8_ligo_comparison,
    ablation_refinement,
    ablation_exploration_noise,
    ablation_window_length,
)
from repro.eval.sample_efficiency import (
    SampleEfficiencyResult,
    sample_efficiency_curves,
)
from repro.eval.capacity import (
    expected_steady_state_wip,
    minimum_stable_allocation,
    per_task_arrival_rates,
    recommended_budget,
)
from repro.eval.parallel import (
    ExperimentCell,
    default_cells,
    derive_cell_seed,
    results_to_json,
    run_cells,
    write_results,
)
from repro.eval.replication import ReplicatedComparison, replicate_comparison
from repro.eval.reporting import (
    format_comparison,
    format_series_table,
    format_table,
    write_series_csv,
)

__all__ = [
    "EvalResult",
    "StepRecord",
    "make_env",
    "evaluate_allocator",
    "run_scenario_comparison",
    "Fig5Result",
    "experiment_fig5_model_accuracy",
    "experiment_fig6_training_trace",
    "experiment_fig7_msd_comparison",
    "experiment_fig8_ligo_comparison",
    "ablation_refinement",
    "ablation_exploration_noise",
    "ablation_window_length",
    "format_table",
    "format_series_table",
    "format_comparison",
    "write_series_csv",
    "SampleEfficiencyResult",
    "sample_efficiency_curves",
    "per_task_arrival_rates",
    "minimum_stable_allocation",
    "recommended_budget",
    "expected_steady_state_wip",
    "ReplicatedComparison",
    "replicate_comparison",
    "ExperimentCell",
    "default_cells",
    "derive_cell_seed",
    "results_to_json",
    "run_cells",
    "write_results",
]
