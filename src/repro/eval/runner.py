"""Run allocators on burst scenarios and record per-window series.

Reproduces the paper's Section VI-D protocol: drain the system, feed the
burst "at the beginning of each evaluation", keep background Poisson
arrivals flowing, then let the allocator control one window at a time and
record the response-time series that Figs. 7–8 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import Allocator
from repro.sim.env import MicroserviceEnv
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.telemetry.profile import PhaseProfiler
from repro.telemetry.tracer import Tracer
from repro.workflows.dag import WorkflowEnsemble
from repro.workload.arrivals import PoissonArrivalProcess
from repro.workload.bursts import BurstScenario

__all__ = [
    "StepRecord",
    "EvalResult",
    "make_env",
    "evaluate_allocator",
    "run_scenario_comparison",
]


@dataclass
class StepRecord:
    """One control window of an evaluation run."""

    step: int
    wip_sum: float
    reward: float
    #: Mean response time of workflows completed this window (0 if none).
    mean_response_time: float
    completions: int
    allocation: np.ndarray
    #: Per-workflow-type mean response times this window.
    response_by_type: Dict[str, float] = field(default_factory=dict)

    def to_jsonable(self) -> Dict:
        """Plain-JSON view (ndarray allocation becomes a list)."""
        return {
            "step": self.step,
            "wip_sum": self.wip_sum,
            "reward": self.reward,
            "mean_response_time": self.mean_response_time,
            "completions": self.completions,
            "allocation": np.asarray(self.allocation).tolist(),
            "response_by_type": dict(self.response_by_type),
        }


@dataclass
class EvalResult:
    """A full evaluation run of one allocator on one scenario."""

    allocator: str
    scenario: str
    records: List[StepRecord] = field(default_factory=list)

    # Series views --------------------------------------------------------
    def response_time_series(self) -> List[float]:
        """Per-step mean response time — the y-series of Figs. 7–8."""
        return [r.mean_response_time for r in self.records]

    def response_time_series_for(self, workflow_type: str) -> List[float]:
        """Per-step mean response time of one workflow type (0 when that
        type completed nothing in a window) — the paper's per-workflow
        discussion of LIGO's CAT/Full/Injection."""
        return [
            r.response_by_type.get(workflow_type, 0.0) for r in self.records
        ]

    def wip_series(self) -> List[float]:
        return [r.wip_sum for r in self.records]

    def reward_series(self) -> List[float]:
        return [r.reward for r in self.records]

    # Summary statistics ------------------------------------------------------
    def aggregated_reward(self) -> float:
        return float(sum(r.reward for r in self.records))

    def mean_response_time(self) -> float:
        """Completion-weighted mean response time over the whole run."""
        total_completions = sum(r.completions for r in self.records)
        if total_completions == 0:
            return 0.0
        weighted = sum(
            r.mean_response_time * r.completions for r in self.records
        )
        return weighted / total_completions

    def final_response_time(self, tail: int = 5) -> float:
        """Mean response time over the last ``tail`` windows (recovery level)."""
        tail_records = [r for r in self.records[-tail:] if r.completions > 0]
        if not tail_records:
            return 0.0
        return float(np.mean([r.mean_response_time for r in tail_records]))

    def drain_step(self, threshold: float = 10.0) -> Optional[int]:
        """First step at which total WIP fell to ``threshold`` or below."""
        for record in self.records:
            if record.wip_sum <= threshold:
                return record.step
        return None

    def total_completions(self) -> int:
        return sum(r.completions for r in self.records)

    def to_jsonable(self) -> Dict:
        """Plain-JSON view (used by the parallel experiment runner)."""
        return {
            "allocator": self.allocator,
            "scenario": self.scenario,
            "records": [r.to_jsonable() for r in self.records],
        }


def make_env(
    ensemble: WorkflowEnsemble,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    background_rates: Optional[Dict[str, float]] = None,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
    window_hooks: Optional[Sequence[Callable]] = None,
) -> MicroserviceEnv:
    """Build a system + Poisson background workload + env in one call."""
    system = MicroserviceWorkflowSystem(
        ensemble,
        config,
        seed=seed,
        tracer=tracer,
        profiler=profiler,
        window_hooks=window_hooks,
    )
    if background_rates:
        PoissonArrivalProcess(background_rates).attach(system)
    return MicroserviceEnv(system)


def evaluate_allocator(
    allocator: Allocator,
    env: MicroserviceEnv,
    scenario: BurstScenario,
    steps: int,
) -> EvalResult:
    """Drain, inject the burst, then run ``steps`` allocator-controlled windows.

    The allocator must already be prepared (trained); this call only binds
    it to ``env`` and runs the evaluation protocol.
    """
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    allocator.bind(env)
    allocator.reset()
    env.reset()
    env.system.inject_burst(scenario.burst)
    result = EvalResult(allocator=allocator.name, scenario=scenario.name)
    wip = env.observe()
    observation = None
    for step in range(steps):
        allocation = allocator.allocate(wip, observation)
        wip, reward, observation = env.step(allocation)
        result.records.append(
            StepRecord(
                step=step,
                wip_sum=float(wip.sum()),
                reward=reward,
                mean_response_time=observation.mean_response_time(),
                completions=observation.total_completions,
                allocation=allocation.copy(),
                response_by_type={
                    wf: observation.mean_response_time_for(wf)
                    for wf in observation.response_times_by_type
                },
            )
        )
    if not env.system.conservation_ok():  # pragma: no cover - invariant guard
        raise RuntimeError("request conservation violated during evaluation")
    return result


def run_scenario_comparison(
    ensemble_builder: Callable[[], WorkflowEnsemble],
    allocators: Sequence[Allocator],
    scenario: BurstScenario,
    steps: int,
    config: Optional[SystemConfig] = None,
    eval_seed: int = 1000,
) -> Dict[str, EvalResult]:
    """Evaluate several (already prepared) allocators on one scenario.

    Every allocator gets its own freshly built system with the *same*
    seed, hence statistically identical background arrivals and service
    times — the controlled-comparison setup of Figs. 7–8.
    """
    results: Dict[str, EvalResult] = {}
    for allocator in allocators:
        env = make_env(
            ensemble_builder(),
            config=config,
            seed=eval_seed,
            background_rates=dict(scenario.background_rates),
        )
        results[allocator.name] = evaluate_allocator(
            allocator, env, scenario, steps
        )
    return results
