"""Multi-seed replication of experiments.

The comparisons of Figs. 7–8 are stochastic (arrivals, service times,
network initialisation); a single seed can flip close orderings.  This
harness repeats any experiment across seeds and aggregates each metric
with mean, standard deviation and win counts — the standard way to report
such results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.eval.runner import EvalResult

__all__ = ["ReplicatedComparison", "replicate_comparison"]


@dataclass
class ReplicatedComparison:
    """Aggregated multi-seed results of a scenario comparison.

    ``values[scenario][allocator]`` is the list of per-seed metric values.
    """

    metric: str
    values: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)

    def mean(self, scenario: str, allocator: str) -> float:
        return float(np.mean(self.values[scenario][allocator]))

    def std(self, scenario: str, allocator: str) -> float:
        return float(np.std(self.values[scenario][allocator]))

    def seeds_run(self) -> int:
        for by_allocator in self.values.values():
            for runs in by_allocator.values():
                return len(runs)
        return 0

    def win_counts(self, scenario: str) -> Dict[str, int]:
        """Per-allocator count of seeds where it had the best metric."""
        by_allocator = self.values[scenario]
        names = list(by_allocator)
        n_seeds = len(by_allocator[names[0]])
        wins = {name: 0 for name in names}
        for seed_index in range(n_seeds):
            best = max(names, key=lambda n: by_allocator[n][seed_index])
            wins[best] += 1
        return wins

    def summary_rows(self) -> List[List]:
        """Rows of (scenario, allocator, mean, std) for reporting."""
        rows = []
        for scenario, by_allocator in self.values.items():
            for allocator, runs in by_allocator.items():
                rows.append(
                    [
                        scenario,
                        allocator,
                        float(np.mean(runs)),
                        float(np.std(runs)),
                    ]
                )
        return rows


def replicate_comparison(
    run_fn: Callable[[int], Mapping[str, Mapping[str, EvalResult]]],
    seeds: Sequence[int],
    metric: str = "aggregated_reward",
) -> ReplicatedComparison:
    """Run ``run_fn(seed)`` for each seed and aggregate one metric.

    ``run_fn`` returns the ``{scenario: {allocator: EvalResult}}`` mapping
    produced by the comparison experiments; ``metric`` names a zero-arg
    EvalResult method.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    aggregated = ReplicatedComparison(metric=metric)
    for seed in seeds:
        results = run_fn(seed)
        for scenario, by_allocator in results.items():
            scenario_bucket = aggregated.values.setdefault(scenario, {})
            for allocator, result in by_allocator.items():
                scenario_bucket.setdefault(allocator, []).append(
                    float(getattr(result, metric)())
                )
    return aggregated
