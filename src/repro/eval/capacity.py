"""Queueing-theoretic capacity planning helpers.

Answers the Section VI-A4 question — "it's important to find the correct
constraints for the microservice systems.  A good constraint means that we
don't have redundant resources ... and also resources should be sufficient"
— analytically: given an ensemble and workflow arrival rates, what is the
minimum stable consumer allocation, and what budget leaves a sensible
headroom?
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from repro.baselines.drs import mmc_expected_number
from repro.workflows.dag import WorkflowEnsemble

__all__ = [
    "per_task_arrival_rates",
    "minimum_stable_allocation",
    "recommended_budget",
    "expected_steady_state_wip",
]


def per_task_arrival_rates(
    ensemble: WorkflowEnsemble, workflow_rates: Mapping[str, float]
) -> Dict[str, float]:
    """Long-run request rate into each microservice's queue.

    With AND-join DAG semantics every task of a workflow is visited exactly
    once per request, so the rate into task j is the sum of the arrival
    rates of the workflows containing j (Jackson-network flow balance).
    """
    rates = {name: 0.0 for name in ensemble.task_names()}
    for workflow in ensemble.workflow_types:
        rate = workflow_rates.get(workflow.name, 0.0)
        if rate < 0:
            raise ValueError(
                f"rate for {workflow.name!r} must be >= 0, got {rate!r}"
            )
        for task in workflow.tasks:
            rates[task] += rate
    return rates


def minimum_stable_allocation(
    ensemble: WorkflowEnsemble, workflow_rates: Mapping[str, float]
) -> Dict[str, int]:
    """Fewest consumers per microservice keeping every queue stable
    (utilisation < 1): ``m_j = floor(lambda_j / mu_j) + 1``."""
    task_rates = per_task_arrival_rates(ensemble, workflow_rates)
    allocation = {}
    for task_type in ensemble.task_types:
        offered = task_rates[task_type.name] * task_type.mean_service_time
        allocation[task_type.name] = int(math.floor(offered)) + 1
    return allocation


def recommended_budget(
    ensemble: WorkflowEnsemble,
    workflow_rates: Mapping[str, float],
    headroom: float = 1.5,
) -> int:
    """A consumer budget with multiplicative headroom over bare stability.

    ``headroom=1.5`` reproduces the "tight but feasible" regime of the
    paper's C=14 (MSD) / C=30 (LIGO) choices under the default workloads.
    """
    if headroom < 1.0:
        raise ValueError(f"headroom must be >= 1, got {headroom!r}")
    minimum = sum(minimum_stable_allocation(ensemble, workflow_rates).values())
    return int(math.ceil(minimum * headroom))


def expected_steady_state_wip(
    ensemble: WorkflowEnsemble,
    workflow_rates: Mapping[str, float],
    allocation: Mapping[str, int],
) -> Dict[str, float]:
    """Jackson-network prediction of per-service steady-state WIP (E[N])
    under a given allocation; ``inf`` for unstable services."""
    task_rates = per_task_arrival_rates(ensemble, workflow_rates)
    out = {}
    for task_type in ensemble.task_types:
        name = task_type.name
        servers = int(allocation.get(name, 0))
        if servers <= 0:
            out[name] = math.inf if task_rates[name] > 0 else 0.0
            continue
        out[name] = mmc_expected_number(
            task_rates[name], 1.0 / task_type.mean_service_time, servers
        )
    return out
