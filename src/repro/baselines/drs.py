"""DRS: dynamic resource scheduling via Jackson open queueing networks.

Re-implementation of the allocation core of Fu et al., "DRS: Dynamic
Resource Scheduling for Real-Time Analytics over Fast Streams" (ICDCS
2015) — the paper's "stream" baseline.  DRS models every operator
(here: microservice) as an M/M/m queue inside a Jackson open network and
chooses the integer server counts minimising the expected total number of
requests in the system (equivalently, by Little's law, the expected total
sojourn time) under the budget:

1. estimate each service's arrival rate lambda_j (we use the shared
   task-inflow estimator) and service rate mu_j = 1 / mean service time,
2. give every service the minimum servers for stability
   (m_j = floor(lambda_j/mu_j) + 1),
3. spend the remaining budget greedily, each unit to the service whose
   expected queue population drops the most (the marginal-gain rule DRS
   proves near-optimal for this separable convex objective).

The paper's observation that DRS "does not react responsively to condition
changes" stems from the steady-state M/M/m assumption — a burst is treated
only through its effect on the smoothed arrival-rate estimate.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.base import (
    Allocator,
    TaskArrivalRateEstimator,
    largest_remainder_allocation,
)
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation

__all__ = ["DrsAllocator", "erlang_c", "mmc_expected_number"]


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C: probability an arrival waits in an M/M/m queue.

    ``offered_load`` is a = lambda/mu (in Erlangs); requires a < servers for
    a stable queue.  Computed with the standard recurrence on the Erlang-B
    blocking probability for numerical stability.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load!r}")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0  # unstable: every arrival waits
    # Erlang-B recurrence: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_expected_number(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Expected number of requests in an M/M/m system (E[N]).

    ``E[N] = a + C(m, a) * rho / (1 - rho)`` with a = lambda/mu and
    rho = a/m; returns ``inf`` when unstable (a >= m).
    """
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate!r}")
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate!r}")
    if arrival_rate == 0:
        return 0.0
    offered = arrival_rate / service_rate
    if offered >= servers:
        return math.inf
    rho = offered / servers
    return offered + erlang_c(servers, offered) * rho / (1.0 - rho)


class DrsAllocator(Allocator):
    """Jackson-network greedy server allocation."""

    name = "stream"

    def __init__(self, rate_smoothing: float = 0.3, rate_floor: float = 1e-3):
        if rate_floor < 0:
            raise ValueError(f"rate_floor must be >= 0, got {rate_floor!r}")
        self.rate_smoothing = rate_smoothing
        self.rate_floor = rate_floor
        self._estimator: Optional[TaskArrivalRateEstimator] = None

    def _on_bind(self, env: MicroserviceEnv) -> None:
        ensemble = env.system.ensemble
        self._task_names = ensemble.task_names()
        self._service_rates = np.array(
            [1.0 / ensemble.task(n).mean_service_time for n in self._task_names]
        )
        self._estimator = TaskArrivalRateEstimator(
            self.num_services,
            env.system.config.window_length,
            alpha=self.rate_smoothing,
        )

    def reset(self) -> None:
        if self._estimator is not None:
            self._estimator.reset()

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        if self._estimator is None:
            raise RuntimeError("call prepare() before allocate()")
        if observation is not None:
            rates = self._estimator.update(observation, self._task_names)
        else:
            rates = self._estimator.rates
        rates = np.maximum(rates, self.rate_floor)

        # Step 2: minimum stable allocation.
        offered = rates / self._service_rates
        allocation = np.floor(offered).astype(np.int64) + 1
        if int(allocation.sum()) > self.budget:
            # Budget cannot even stabilise the estimated load: degrade to
            # offered-load-proportional apportionment (DRS's fallback regime).
            return self._check(
                largest_remainder_allocation(offered, self.budget)
            )

        # Step 3: greedy marginal-gain spending of the remaining budget.
        remaining = self.budget - int(allocation.sum())
        current_en = np.array(
            [
                mmc_expected_number(r, s, int(m))
                for r, s, m in zip(rates, self._service_rates, allocation)
            ]
        )
        for _ in range(remaining):
            gains = np.empty(self.num_services)
            next_en = np.empty(self.num_services)
            for j in range(self.num_services):
                next_en[j] = mmc_expected_number(
                    rates[j], self._service_rates[j], int(allocation[j]) + 1
                )
                gains[j] = current_en[j] - next_en[j]
            best = int(np.argmax(gains))
            if gains[best] <= 0:
                break  # nothing left to improve; keep spare capacity idle
            allocation[best] += 1
            current_en[best] = next_en[best]
        return self._check(allocation)
