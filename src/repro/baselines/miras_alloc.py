"""Adapter exposing a trained MIRAS agent through the allocator interface.

The comparison harness (:mod:`repro.eval.runner`) treats every algorithm
uniformly; this wrapper lets a :class:`repro.core.agent.MirasAgent` —
trained via Algorithm 2 — join the Figs. 7–8 comparisons.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Allocator
from repro.core.agent import MirasAgent
from repro.core.config import MirasConfig
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation

__all__ = ["MirasAllocator"]


class MirasAllocator(Allocator):
    """MIRAS as a per-window allocator.

    Either wrap an already-trained agent, or let :meth:`prepare` run the
    full Algorithm-2 training against the environment it is handed.
    """

    name = "miras"

    def __init__(
        self,
        agent: Optional[MirasAgent] = None,
        config: Optional[MirasConfig] = None,
        seed: int = 0,
    ):
        self.agent = agent
        self.config = config
        self.seed = seed

    def prepare(self, env: MicroserviceEnv) -> None:
        self.bind(env)
        if self.agent is None:
            self.agent = MirasAgent(env, self.config, seed=self.seed)
            self.agent.iterate()
        elif self.agent.env.consumer_budget != env.consumer_budget:
            raise ValueError(
                "trained MIRAS agent has a different consumer budget "
                f"({self.agent.env.consumer_budget} vs {env.consumer_budget})"
            )

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        if self.agent is None:
            raise RuntimeError("call prepare() before allocate()")
        simplex = self.agent.ddpg.act_greedy(np.asarray(wip, dtype=np.float64))
        allocation = np.floor(self.budget * np.clip(simplex, 0, 1))
        return self._check(allocation.astype(np.int64))
