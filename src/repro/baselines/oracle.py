"""Clairvoyant oracle allocator (upper-bound anchor).

Not one of the paper's baselines — a diagnostic upper bound.  The oracle
peeks *inside* the queues (which no online allocator can): for every
queued or in-flight task request it computes the **remaining downstream
work** of its workflow instance — the mean service time of this task plus
every not-yet-completed task reachable from it in the instance's DAG —
and allocates consumers proportionally to each microservice's share of
service-time-weighted work, biased toward stages whose output unlocks the
most downstream processing.

A learnt policy approaching the oracle's aggregated reward is close to
what full-information reactive allocation achieves on this substrate.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.base import Allocator, largest_remainder_allocation
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation

__all__ = ["OracleAllocator"]


class OracleAllocator(Allocator):
    """Full-information proportional allocation by remaining work."""

    name = "oracle"

    def _on_bind(self, env: MicroserviceEnv) -> None:
        self._system = env.system
        self._ensemble = env.system.ensemble
        self._service_times = self._ensemble.mean_service_times()

    def _remaining_work(self) -> np.ndarray:
        """Service-time-weighted pending work per microservice.

        Immediate work: each queued/in-flight request contributes its own
        mean service time to its current queue.  Downstream work of a
        request is *not* attributed yet (it will reach those queues when
        published), but each task's weight is boosted by the downstream
        service time it unlocks, which prioritises pipeline heads exactly
        when their completion feeds starving successors.
        """
        ensemble = self._ensemble
        work = np.zeros(ensemble.num_task_types)
        for name, microservice in self._system.microservices.items():
            j = ensemble.task_index(name)
            queue = microservice.queue
            # Peek at ready + unacked requests (oracle privilege).
            requests = list(queue._ready) + list(queue._unacked.values())
            for task_request in requests:
                workflow = ensemble.workflow(
                    task_request.workflow.workflow_type
                )
                own = self._service_times[name]
                downstream = self._downstream_time(
                    workflow, name, task_request.workflow.completed_tasks
                )
                # Own work dominates; the downstream term breaks ties
                # toward stages that unblock more of the pipeline.
                work[j] += own + 0.25 * downstream
        return work

    def _downstream_time(self, workflow, task: str, completed) -> float:
        """Total mean service time of uncompleted tasks reachable from
        ``task`` in this workflow instance."""
        seen = set()
        stack = [task]
        while stack:
            current = stack.pop()
            for successor in workflow.successors(current):
                if successor in seen or successor in completed:
                    continue
                seen.add(successor)
                stack.append(successor)
        # fsum is correctly rounded regardless of iteration order, so the
        # set's hash-dependent ordering cannot perturb the result.
        return math.fsum(self._service_times[s] for s in seen)

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        work = self._remaining_work()
        return self._check(largest_remainder_allocation(work, self.budget))
