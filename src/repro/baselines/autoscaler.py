"""Horizontal-autoscaler baseline (Kubernetes HPA analog).

Not in the paper's comparison set, but the de-facto industry answer to the
problem MIRAS solves, so a natural extra baseline: scale each
microservice's consumer count toward a **target utilisation**, like the
Kubernetes Horizontal Pod Autoscaler's
``desired = ceil(current * metric / target)`` rule, then fit the desired
counts into the shared budget proportionally.

The utilisation metric per service is the fraction of its consumers busy
during the window (estimated from task completions x mean service time /
(consumers x window)).  Unlike MIRAS, the HPA rule is purely local per
service and has no notion of pipeline coupling or future reward.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Allocator, largest_remainder_allocation
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation
from repro.utils.validation import check_in_range

__all__ = ["HpaAllocator"]


class HpaAllocator(Allocator):
    """Per-service target-utilisation scaling under a shared budget."""

    name = "hpa"

    def __init__(
        self,
        target_utilization: float = 0.7,
        min_replicas: int = 1,
        scale_up_limit: float = 2.0,
    ):
        check_in_range(
            "target_utilization", target_utilization, 0.0, 1.0,
            inclusive=(False, True),
        )
        if min_replicas < 0:
            raise ValueError(f"min_replicas must be >= 0, got {min_replicas}")
        if scale_up_limit <= 1.0:
            raise ValueError(
                f"scale_up_limit must exceed 1, got {scale_up_limit!r}"
            )
        self.target_utilization = target_utilization
        self.min_replicas = min_replicas
        #: Max multiplicative growth per window (HPA's scale-up policy).
        self.scale_up_limit = scale_up_limit
        self._previous: Optional[np.ndarray] = None

    def _on_bind(self, env: MicroserviceEnv) -> None:
        ensemble = env.system.ensemble
        self._task_names = ensemble.task_names()
        self._service_times = np.array(
            [ensemble.task(n).mean_service_time for n in self._task_names]
        )
        self._window = env.system.config.window_length
        self._previous = None

    def reset(self) -> None:
        self._previous = None

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        wip = np.asarray(wip, dtype=np.float64)
        if self._previous is None or observation is None:
            # Cold start: uniform split at minimums.
            allocation = largest_remainder_allocation(
                np.ones(self.num_services), self.budget
            )
            self._previous = allocation
            return self._check(allocation)

        completions = np.array(
            [
                observation.task_completions.get(name, 0)
                for name in self._task_names
            ],
            dtype=np.float64,
        )
        current = np.maximum(self._previous, 1)
        busy_seconds = completions * self._service_times
        utilization = np.clip(
            busy_seconds / (current * self._window), 0.0, 1.5
        )
        # Back-pressure correction: a deep queue means utilisation alone
        # understates demand (consumers saturated at 1.0); treat queued
        # work as extra utilisation pressure, as HPA does with external
        # queue-length metrics.
        queue_pressure = wip * self._service_times / (current * self._window)
        metric = np.maximum(utilization, np.minimum(queue_pressure, 3.0))

        desired = np.ceil(current * metric / self.target_utilization)
        desired = np.minimum(
            desired, np.ceil(current * self.scale_up_limit)
        )
        desired = np.maximum(desired, self.min_replicas)

        total = int(desired.sum())
        if total <= self.budget:
            allocation = desired.astype(np.int64)
        else:
            allocation = largest_remainder_allocation(desired, self.budget)
            allocation = np.maximum(allocation, 0)
        self._previous = allocation
        return self._check(allocation)
