"""MONAD: model-predictive-control resource allocation.

Re-implementation of the allocation idea of Nguyen & Nahrstedt, "MONAD:
Self-adaptive micro-service infrastructure for heterogeneous scientific
workflows" (ICAC 2017) — the paper's third baseline.  MONAD identifies a
performance model of the microservice system and plans resource changes
over a short horizon:

- **identification**: a linear model ``w(k+1) = A w(k) + B m(k) + c``
  fitted by ridge regression over observed transitions (the same
  (s, a, s') tuples MIRAS collects, for a fair interaction budget),
- **control**: each window, choose ``m`` minimising the predicted squared
  WIP over a short horizon subject to ``m >= 0`` and ``sum m <= C`` —
  projected-gradient descent on the continuous relaxation, then
  largest-remainder rounding.

The paper's criticism — "MONAD focuses on short-term returns and is not
suitable to yield a global optimal solution" — corresponds to the short
(default 1-step) horizon here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Allocator, largest_remainder_allocation
from repro.core.dataset import TransitionDataset
from repro.rl.noise import project_to_simplex
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LinearPerformanceModel", "MonadAllocator"]


class LinearPerformanceModel:
    """Ridge-regression linear dynamics ``w' = A w + B m + c``."""

    def __init__(self, state_dim: int, action_dim: int, ridge: float = 1.0):
        check_positive("state_dim", state_dim)
        check_positive("action_dim", action_dim)
        check_non_negative("ridge", ridge)
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.ridge = ridge
        self.A = np.eye(state_dim)
        self.B = np.zeros((state_dim, action_dim))
        self.c = np.zeros(state_dim)
        self.fitted = False

    def fit(self, dataset: TransitionDataset) -> float:
        """Least-squares fit; returns the training MSE."""
        states, actions, next_states = dataset.arrays()
        n = states.shape[0]
        design = np.concatenate(
            [states, actions, np.ones((n, 1))], axis=1
        )
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        theta = np.linalg.solve(gram, design.T @ next_states)
        self.A = theta[: self.state_dim].T
        self.B = theta[self.state_dim : self.state_dim + self.action_dim].T
        self.c = theta[-1]
        self.fitted = True
        residual = design @ theta - next_states
        return float(np.mean(residual**2))

    def predict(self, state: np.ndarray, action: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        action = np.asarray(action, dtype=np.float64)
        return self.A @ state + self.B @ action + self.c


class MonadAllocator(Allocator):
    """One-step (or short-horizon) MPC over the linear model."""

    name = "monad"

    def __init__(
        self,
        horizon: int = 1,
        ridge: float = 1.0,
        gradient_steps: int = 100,
        step_size: float = 0.5,
        training_steps: int = 200,
    ):
        check_positive("horizon", horizon)
        check_positive("gradient_steps", gradient_steps)
        check_positive("step_size", step_size)
        check_positive("training_steps", training_steps)
        self.horizon = horizon
        self.ridge = ridge
        self.gradient_steps = gradient_steps
        self.step_size = step_size
        self.training_steps = training_steps
        self.model: Optional[LinearPerformanceModel] = None

    # Identification ---------------------------------------------------------
    def prepare(self, env: MicroserviceEnv) -> None:
        """Collect identification data with random allocations and fit."""
        self.bind(env)
        self.model = LinearPerformanceModel(
            env.state_dim, env.action_dim, ridge=self.ridge
        )
        dataset = TransitionDataset(env.state_dim, env.action_dim)
        rng = env.system.workload_rng.fork("monad-ident")
        state = env.reset()
        for step in range(self.training_steps):
            if step > 0 and step % 25 == 0:
                state = env.reset()
            allocation = env.random_allocation(rng)
            next_state, _, _ = env.step(allocation)
            dataset.add(state, allocation.astype(np.float64), next_state)
            state = next_state
        self.model.fit(dataset)

    def fit_from_dataset(
        self, env: MicroserviceEnv, dataset: TransitionDataset
    ) -> None:
        """Alternative preparation: reuse an existing interaction dataset.

        The comparison harness uses this to give MONAD exactly the same
        real-environment interaction budget as MIRAS.
        """
        self.bind(env)
        self.model = LinearPerformanceModel(
            env.state_dim, env.action_dim, ridge=self.ridge
        )
        self.model.fit(dataset)

    # Control ------------------------------------------------------------------
    def _project(self, m: np.ndarray) -> np.ndarray:
        """Project onto {m >= 0, sum m <= C}."""
        m = np.maximum(m, 0.0)
        total = float(m.sum())
        if total <= self.budget:
            return m
        return self.budget * project_to_simplex(m / self.budget)

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        if self.model is None or not self.model.fitted:
            raise RuntimeError("call prepare()/fit_from_dataset() first")
        wip = np.asarray(wip, dtype=np.float64)
        # Continuous relaxation, warm-started at a uniform split.
        m = np.full(self.num_services, self.budget / self.num_services)
        for _ in range(self.gradient_steps):
            gradient = self._objective_gradient(wip, m)
            m = self._project(m - self.step_size * gradient)
        allocation = largest_remainder_allocation(m, self.budget)
        return self._check(allocation)

    def _objective_gradient(self, wip: np.ndarray, m: np.ndarray) -> np.ndarray:
        """d/dm of sum over the horizon of ||ŵ(k+h)||^2 (same m each step)."""
        model = self.model
        gradient = np.zeros_like(m)
        state = wip
        # Accumulated sensitivity d state / d m across the horizon.
        sensitivity = np.zeros((model.state_dim, model.action_dim))
        for _ in range(self.horizon):
            sensitivity = model.A @ sensitivity + model.B
            state = model.predict(state, m)
            clipped = np.maximum(state, 0.0)
            active = (state > 0).astype(np.float64)
            gradient += 2.0 * (clipped * active) @ sensitivity
            state = clipped
        return gradient
