"""Comparison algorithms from the paper's Section VI-D.

- :mod:`repro.baselines.drs` — DRS (Fu et al., ICDCS'15): Jackson
  open-queueing-network allocation ("stream" in Figs. 7–8),
- :mod:`repro.baselines.heft` — HEFT (Yu et al.) adapted to per-window
  resource allocation exactly as the paper describes,
- :mod:`repro.baselines.monad` — MONAD (Nguyen & Nahrstedt, ICAC'17):
  model-predictive control over an identified linear performance model,
- :mod:`repro.baselines.modelfree` — model-free DDPG trained with the same
  number of real interactions as MIRAS ("rl" in Figs. 7–8),
- :mod:`repro.baselines.static_alloc` — uniform and WIP-proportional
  allocators (sanity anchors),
- :mod:`repro.baselines.base` — the shared allocator interface, integer
  apportionment, and the task-inflow estimator.
"""

from repro.baselines.autoscaler import HpaAllocator
from repro.baselines.oracle import OracleAllocator
from repro.baselines.base import (
    Allocator,
    TaskInflowEstimator,
    largest_remainder_allocation,
)
from repro.baselines.drs import DrsAllocator, erlang_c, mmc_expected_number
from repro.baselines.heft import HeftAllocator, upward_ranks
from repro.baselines.miras_alloc import MirasAllocator
from repro.baselines.modelfree import ModelFreeDDPGAllocator
from repro.baselines.monad import LinearPerformanceModel, MonadAllocator
from repro.baselines.static_alloc import (
    ProportionalToWipAllocator,
    UniformAllocator,
)

__all__ = [
    "Allocator",
    "TaskInflowEstimator",
    "largest_remainder_allocation",
    "DrsAllocator",
    "erlang_c",
    "mmc_expected_number",
    "HeftAllocator",
    "upward_ranks",
    "MonadAllocator",
    "LinearPerformanceModel",
    "ModelFreeDDPGAllocator",
    "MirasAllocator",
    "UniformAllocator",
    "HpaAllocator",
    "OracleAllocator",
    "ProportionalToWipAllocator",
]
