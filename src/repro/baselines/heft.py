"""HEFT adapted to per-window resource allocation.

The paper adapts the list-scheduling algorithm HEFT (Yu, Buyya &
Ramamohanarao [37]) to its setting: "we assign tasks with priorities using
their proposed method.  At the beginning of each time window we make
resource allocation decisions based on both task number and task priority."

HEFT's priority is the *upward rank*: ``rank_u(t) = w_t + max over
successors rank_u(succ)`` — the critical-path-to-exit length from the
task.  A task type shared by several workflows takes its maximum rank.
The per-window allocation weights each microservice by
``queue length x priority`` and apportions the budget proportionally.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import Allocator, largest_remainder_allocation
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation
from repro.workflows.dag import WorkflowEnsemble

__all__ = ["HeftAllocator", "upward_ranks"]


def upward_ranks(ensemble: WorkflowEnsemble) -> Dict[str, float]:
    """HEFT upward rank per task type, maximised across workflows.

    Within each workflow DAG, ``rank_u(t) = mean_service(t) + max over
    successors of rank_u``; exit tasks rank at their own service time.
    """
    service_times = ensemble.mean_service_times()
    ranks: Dict[str, float] = {name: 0.0 for name in ensemble.task_names()}
    for workflow in ensemble.workflow_types:
        local: Dict[str, float] = {}
        for task in reversed(workflow.topological_order()):
            successor_best = max(
                (local[s] for s in workflow.successors(task)), default=0.0
            )
            local[task] = service_times[task] + successor_best
        for task, rank in local.items():
            ranks[task] = max(ranks[task], rank)
    return ranks


class HeftAllocator(Allocator):
    """queue-length x upward-rank proportional allocation."""

    name = "heft"

    def __init__(self, smoothing: float = 0.5):
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing!r}")
        self.smoothing = smoothing

    def _on_bind(self, env: MicroserviceEnv) -> None:
        ensemble = env.system.ensemble
        ranks = upward_ranks(ensemble)
        self._ranks = np.array(
            [ranks[name] for name in ensemble.task_names()]
        )

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        wip = np.asarray(wip, dtype=np.float64)
        # "based on both task number and task priority":
        weights = (wip + self.smoothing) * self._ranks
        return self._check(
            largest_remainder_allocation(weights, self.budget)
        )
