"""Model-free DDPG baseline ("rl" in Figs. 7–8).

"The 4th algorithm is DDPG with no predictive model, or model-free DDPG.
That is, we directly train DDPG models by interacting with the real
environment.  To guarantee fairness, we train DDPG models using the same
number of interactions with MIRAS" (Section VI-D).

The paper's finding — model-free DDPG "doesn't converge to a good policy,
showing its poor sample efficiency" — emerges here naturally: the agent
gets only as many *real* transitions as MIRAS collected, with no synthetic
model rollouts to multiply them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Allocator
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["ModelFreeDDPGAllocator"]


class ModelFreeDDPGAllocator(Allocator):
    """DDPG trained directly against the real environment."""

    name = "rl"

    def __init__(
        self,
        training_steps: int = 1000,
        reset_interval: int = 25,
        updates_per_step: int = 1,
        config: Optional[DDPGConfig] = None,
        seed: int = 0,
        burst_probability: float = 0.3,
        burst_scale: float = 20.0,
    ):
        check_positive("training_steps", training_steps)
        check_positive("reset_interval", reset_interval)
        check_positive("updates_per_step", updates_per_step)
        if not 0 <= burst_probability <= 1:
            raise ValueError(
                f"burst_probability must lie in [0, 1], got {burst_probability!r}"
            )
        if burst_scale < 0:
            raise ValueError(f"burst_scale must be >= 0, got {burst_scale!r}")
        self.training_steps = training_steps
        self.reset_interval = reset_interval
        self.updates_per_step = updates_per_step
        self.config = config or DDPGConfig()
        self.seed = seed
        #: Burst-at-reset coverage, matching MirasConfig's collection
        #: protocol so the interaction budgets stay comparable.
        self.burst_probability = burst_probability
        self.burst_scale = burst_scale
        self.agent: Optional[DDPGAgent] = None
        self.episode_returns: List[float] = []

    def _maybe_inject_burst(
        self, env: MicroserviceEnv, state: np.ndarray, rng: RngStream
    ) -> np.ndarray:
        if self.burst_probability <= 0 or self.burst_scale <= 0:
            return state
        if float(rng.uniform()) >= self.burst_probability:
            return state
        total = int(rng.uniform(0.0, self.burst_scale * env.consumer_budget))
        if total == 0:
            return state
        names = env.system.ensemble.workflow_names()
        shares = rng.generator.dirichlet(np.ones(len(names)))
        env.system.inject_burst(
            {n: int(round(total * s)) for n, s in zip(names, shares)}
        )
        return env.observe()

    def prepare(self, env: MicroserviceEnv) -> None:
        """Train with exactly ``training_steps`` real interactions."""
        self.bind(env)
        rng = RngStream("modelfree", np.random.SeedSequence(self.seed))
        self.agent = DDPGAgent(
            env.state_dim, env.action_dim, config=self.config, rng=rng
        )
        burst_rng = rng.fork("bursts")
        state = env.reset()
        state = self._maybe_inject_burst(env, state, burst_rng)
        episode_return = 0.0
        for step in range(self.training_steps):
            if step > 0 and step % self.reset_interval == 0:
                self.episode_returns.append(episode_return)
                episode_return = 0.0
                state = env.reset()
                state = self._maybe_inject_burst(env, state, burst_rng)
                self.agent.refresh_perturbation()
            simplex = self.agent.act(state, explore=True)
            executed = env.allocation_from_simplex(simplex)
            next_state, reward, _ = env.step(executed)
            self.agent.store(
                state, executed / env.consumer_budget, reward, next_state
            )
            if len(self.agent.replay) >= self.config.batch_size:
                self.agent.update_many(self.updates_per_step)
            state = next_state
            episode_return += reward
        self.episode_returns.append(episode_return)

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        if self.agent is None:
            raise RuntimeError("call prepare() before allocate()")
        simplex = self.agent.act_greedy(np.asarray(wip, dtype=np.float64))
        allocation = np.floor(self.budget * np.clip(simplex, 0, 1))
        return self._check(allocation.astype(np.int64))
