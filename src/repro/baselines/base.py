"""Shared allocator interface and helpers.

Every algorithm in the paper's comparison decides, at the beginning of each
time window, "only the number of machines allocated to each task" under the
budget ``sum_j m_j <= C``.  The :class:`Allocator` interface captures exactly
that: observe the WIP vector (plus the previous window's observation) and
emit an integer allocation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.sim.env import MicroserviceEnv
from repro.sim.metrics import WindowObservation

__all__ = [
    "Allocator",
    "largest_remainder_allocation",
    "TaskInflowEstimator",
    "TaskArrivalRateEstimator",
]


def largest_remainder_allocation(
    weights: np.ndarray, budget: int
) -> np.ndarray:
    """Apportion ``budget`` integer units proportionally to ``weights``.

    Hamilton's largest-remainder method: floor the proportional shares,
    then hand the leftover units to the largest fractional remainders.
    All-zero (or negative-clipped-to-zero) weights fall back to a uniform
    split.  The result always sums to exactly ``budget``.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    weights = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)
    n = weights.size
    if n == 0:
        raise ValueError("weights must be non-empty")
    total = float(weights.sum())
    if total <= 0:
        weights = np.ones(n)
        total = float(n)
    shares = budget * weights / total
    allocation = np.floor(shares).astype(np.int64)
    remainder = budget - int(allocation.sum())
    if remainder > 0:
        fractional = shares - allocation
        for idx in np.argsort(-fractional)[:remainder]:
            allocation[idx] += 1
    return allocation


class TaskInflowEstimator:
    """EWMA estimate of per-microservice request inflow (requests/second).

    Within one window, conservation gives
    ``inflow_j = completions_j + (w_j(end) - w_j(start))``; dividing by the
    window length yields a rate.  An EWMA smooths the heavy per-window
    randomness the paper highlights.
    """

    def __init__(self, num_services: int, window_length: float, alpha: float = 0.5):
        if num_services < 1:
            raise ValueError(f"num_services must be >= 1, got {num_services}")
        if window_length <= 0:
            raise ValueError(
                f"window_length must be positive, got {window_length!r}"
            )
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self.num_services = num_services
        self.window_length = window_length
        self.alpha = alpha
        self._rates = np.zeros(num_services)
        self._prev_wip: Optional[np.ndarray] = None
        self._initialized = False

    def update(
        self,
        wip: np.ndarray,
        observation: WindowObservation,
        task_names,
    ) -> np.ndarray:
        """Fold one window's observation in; returns the current estimate."""
        wip = np.asarray(wip, dtype=np.float64)
        completions = np.array(
            [observation.task_completions.get(name, 0) for name in task_names],
            dtype=np.float64,
        )
        if self._prev_wip is None:
            inflow = completions  # no delta available on the first window
        else:
            inflow = np.maximum(completions + (wip - self._prev_wip), 0.0)
        rates = inflow / self.window_length
        if self._initialized:
            self._rates = self.alpha * rates + (1 - self.alpha) * self._rates
        else:
            self._rates = rates
            self._initialized = True
        self._prev_wip = wip.copy()
        return self._rates.copy()

    @property
    def rates(self) -> np.ndarray:
        return self._rates.copy()

    def reset(self) -> None:
        self._rates = np.zeros(self.num_services)
        self._prev_wip = None
        self._initialized = False


class TaskArrivalRateEstimator:
    """EWMA estimate of per-queue *arrival* rates (requests/second).

    Unlike :class:`TaskInflowEstimator`, this measures only messages
    published to each queue — the quantity a steady-state queueing model
    (DRS) provisions for.  Accumulated backlog does not enter the
    estimate, which is precisely why DRS "does not react responsively to
    condition changes" (Section VI-D): after a burst window passes, the
    rate estimate decays even though the backlog remains.
    """

    def __init__(self, num_services: int, window_length: float, alpha: float = 0.3):
        if num_services < 1:
            raise ValueError(f"num_services must be >= 1, got {num_services}")
        if window_length <= 0:
            raise ValueError(
                f"window_length must be positive, got {window_length!r}"
            )
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self.num_services = num_services
        self.window_length = window_length
        self.alpha = alpha
        self._rates = np.zeros(num_services)
        self._initialized = False

    def update(self, observation: WindowObservation, task_names) -> np.ndarray:
        """Fold one window's publish counts in; returns the estimate."""
        publishes = np.array(
            [observation.task_publishes.get(name, 0) for name in task_names],
            dtype=np.float64,
        )
        rates = publishes / self.window_length
        if self._initialized:
            self._rates = self.alpha * rates + (1 - self.alpha) * self._rates
        else:
            self._rates = rates
            self._initialized = True
        return self._rates.copy()

    @property
    def rates(self) -> np.ndarray:
        return self._rates.copy()

    def reset(self) -> None:
        self._rates = np.zeros(self.num_services)
        self._initialized = False


class Allocator(ABC):
    """Per-window resource allocation policy.

    Lifecycle: :meth:`prepare` runs once and may be expensive (the learning
    baselines train there); :meth:`bind` attaches the allocator to the
    environment it will control (the comparison harness trains on one
    system and evaluates on a fresh one with identical arrivals, so these
    are separate systems); :meth:`reset` clears per-episode state.
    """

    #: Short name used in reports ("miras", "stream", "heft", ...).
    name = "allocator"

    def prepare(self, env: MicroserviceEnv) -> None:
        """One-time setup; learning baselines train here.

        Default implementation just binds — heuristic allocators need no
        training.
        """
        self.bind(env)

    def bind(self, env: MicroserviceEnv) -> None:
        """Attach to the environment this allocator will control."""
        self._env = env
        self.num_services = env.action_dim
        self.budget = env.consumer_budget
        self._on_bind(env)

    def _on_bind(self, env: MicroserviceEnv) -> None:
        """Hook for cheap env-derived state (ranks, estimators, ...)."""

    def reset(self) -> None:
        """Clear per-episode state (estimators etc.).  Default: no-op."""

    @abstractmethod
    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        """Integer allocation for the next window; must satisfy the budget."""

    def _check(self, allocation: np.ndarray) -> np.ndarray:
        allocation = np.asarray(allocation, dtype=np.int64)
        if np.any(allocation < 0) or int(allocation.sum()) > self.budget:
            raise RuntimeError(
                f"{self.name} produced an infeasible allocation {allocation} "
                f"(budget {self.budget})"
            )
        return allocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
