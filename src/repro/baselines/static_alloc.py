"""Static / reactive heuristic allocators (sanity anchors).

Not part of the paper's comparison set, but useful as calibration anchors:
a learnt policy that cannot beat uniform or WIP-proportional allocation
has learnt nothing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Allocator, largest_remainder_allocation
from repro.sim.metrics import WindowObservation

__all__ = ["UniformAllocator", "ProportionalToWipAllocator"]


class UniformAllocator(Allocator):
    """Split the budget evenly across microservices, every window."""

    name = "uniform"

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        return self._check(
            largest_remainder_allocation(
                np.ones(self.num_services), self.budget
            )
        )


class ProportionalToWipAllocator(Allocator):
    """Allocate proportionally to current WIP (queue-pressure reactive).

    ``smoothing`` adds a constant to every weight so empty services retain
    a small share and are not starved the instant their queue drains.
    """

    name = "wip-proportional"

    def __init__(self, smoothing: float = 1.0):
        if smoothing < 0:
            raise ValueError(f"smoothing must be >= 0, got {smoothing!r}")
        self.smoothing = smoothing

    def allocate(
        self,
        wip: np.ndarray,
        observation: Optional[WindowObservation] = None,
    ) -> np.ndarray:
        weights = np.asarray(wip, dtype=np.float64) + self.smoothing
        return self._check(
            largest_remainder_allocation(weights, self.budget)
        )
