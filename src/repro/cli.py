"""Command-line interface.

::

    python -m repro train --dataset msd --output runs/msd-agent
    python -m repro evaluate --agent runs/msd-agent --dataset msd --burst 0
    python -m repro simulate --dataset msd --allocator heft --burst 0
    python -m repro model-accuracy --dataset ligo
    python -m repro experiments --experiments fig5,fig6 --workers 4
    python -m repro trace --dataset msd --output runs/trace-msd
    python -m repro report runs/trace-msd
    python -m repro metrics runs/trace-msd --format prom
    python -m repro metrics runs/trace-msd --serve 9090
    python -m repro slo runs/trace-msd --specs slo.toml
    python -m repro critical runs/trace-msd --top 5
    python -m repro bench report --append
    python -m repro profile run --dataset msd --output runs/prof-msd
    python -m repro profile report runs/prof-msd

``train`` runs Algorithm 2; ``evaluate`` deploys a saved agent on a paper
burst scenario; ``simulate`` runs a heuristic allocator (no learning);
``model-accuracy`` reproduces the Fig. 5 protocol; ``experiments`` maps
figure/ablation cells over worker processes with label-derived per-cell
seeds (results are byte-identical for any ``--workers``); ``trace`` reruns a
simulation or training run with telemetry on, writing a JSONL trace, a
run manifest, and aggregated metrics; ``report`` summarizes such a trace
into utilization, queue-depth, container-lifecycle, and training-curve
tables (``--json`` for machine-readable output); ``metrics`` replays a
trace through the streaming aggregation engine (text, JSON, or
Prometheus exposition output — ``--serve PORT`` exposes it at a
``GET /metrics`` HTTP endpoint instead); ``slo`` evaluates declarative
objectives from a TOML/JSON spec file against a trace and exits nonzero
on violation; ``critical`` attributes each request's end-to-end latency
to causal stages (queue / startup / retry / service) and ranks the
bottlenecks; ``bench report`` summarizes the root ``BENCH_*.json``
artifacts into one table (``--append`` records a dated row in
``BENCH_TRAJECTORY.jsonl``); ``profile run`` is ``trace`` with the
phase profiler on (adds ``profile.json``); ``profile report`` renders a
saved phase tree (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIRAS reproduction (ICDCS 2019) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a MIRAS agent (Algorithm 2)")
    _add_dataset(train)
    train.add_argument("--scale", choices=("fast", "paper"), default="fast")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--iterations", type=int, default=None,
                       help="override the preset's iteration count")
    train.add_argument(
        "--rollout-batch", type=int, default=None,
        help="synthetic rollouts advanced together per pass (K in the "
             "vectorised rollout engine; 1 = the serial schedule)",
    )
    train.add_argument(
        "--collect-mode", choices=("serial", "logical", "physical"),
        default=None,
        help="real-environment collection topology: serial (in-loop), "
             "logical (fixed interleave schedule in-process, "
             "deterministic), or physical (collector processes); "
             "logical and physical are byte-identical for any worker "
             "count",
    )
    train.add_argument(
        "--collect-workers", type=int, default=None,
        help="collector processes for the distributed collect modes "
             "(0 = auto-detect os.cpu_count(); a pure throughput knob — "
             "never changes results)",
    )
    train.add_argument("--output", default=None,
                       help="directory to save the trained agent to")

    evaluate = sub.add_parser(
        "evaluate", help="deploy a saved agent on a burst scenario"
    )
    _add_dataset(evaluate)
    evaluate.add_argument("--agent", required=True,
                          help="directory written by `repro train --output`")
    evaluate.add_argument("--burst", type=int, default=0,
                          help="burst scenario index (0-2)")
    evaluate.add_argument("--steps", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=1000)

    simulate = sub.add_parser(
        "simulate", help="run a heuristic allocator on a burst (no learning)"
    )
    _add_dataset(simulate)
    simulate.add_argument(
        "--allocator",
        choices=("uniform", "wip", "stream", "heft", "hpa", "oracle"),
        default="uniform",
    )
    simulate.add_argument("--burst", type=int, default=0)
    simulate.add_argument("--steps", type=int, default=30)
    simulate.add_argument("--seed", type=int, default=1000)

    accuracy = sub.add_parser(
        "model-accuracy", help="Fig. 5 model-accuracy protocol"
    )
    _add_dataset(accuracy)
    accuracy.add_argument("--collect-steps", type=int, default=1200)
    accuracy.add_argument("--test-steps", type=int, default=100)
    accuracy.add_argument("--seed", type=int, default=0)

    experiments = sub.add_parser(
        "experiments",
        help="run figure/ablation experiment cells (optionally in parallel)",
    )
    experiments.add_argument(
        "--experiments", default="fig5",
        help="comma-separated experiment names (see repro.eval.parallel); "
             "e.g. fig5,fig6,fig7,fig8,ablate-refinement",
    )
    experiments.add_argument("--replicates", type=int, default=1,
                             help="cells per experiment")
    experiments.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (0 = auto-detect os.cpu_count()); "
             "results are byte-identical for any count",
    )
    experiments.add_argument("--seed", type=int, default=0,
                             help="root seed (per-cell seeds derive from it)")
    experiments.add_argument("--quick", action="store_true",
                             help="reduced schedules (CI/smoke scale)")
    experiments.add_argument("--output", default=None,
                             help="write the results JSON to this file")
    experiments.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="capture a per-cell trace + metrics under DIR and merge "
             "them into fleet_metrics.json / fleet_manifest.json "
             "(byte-identical for any --workers)",
    )

    trace = sub.add_parser(
        "trace", help="run a traced simulation/training run (JSONL + manifest)"
    )
    _add_trace_options(trace)

    report = sub.add_parser(
        "report", help="summarize a trace file or run directory"
    )
    report.add_argument("path",
                        help="trace.jsonl file or directory containing one")
    report.add_argument("--validate", action="store_true",
                        help="check every record against its schema")
    report.add_argument("--json", action="store_true",
                        help="emit the summaries as one JSON document")

    metrics = sub.add_parser(
        "metrics",
        help="aggregate a trace into counters/gauges/histograms",
    )
    metrics.add_argument(
        "path", help="trace.jsonl file or run directory containing one"
    )
    metrics.add_argument("--format", choices=("text", "json", "prom"),
                         default="text")
    metrics.add_argument("--validate", action="store_true",
                         help="check every record against its schema")
    metrics.add_argument(
        "--output", default=None,
        help="also write metrics.json + metrics.prom into this directory",
    )
    metrics.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve the aggregates at http://127.0.0.1:PORT/metrics "
             "(Prometheus exposition 0.0.4) instead of printing them",
    )

    slo = sub.add_parser(
        "slo",
        help="evaluate SLO objectives against a trace (nonzero on failure)",
    )
    slo.add_argument(
        "path", help="trace.jsonl file or run directory containing one"
    )
    slo.add_argument(
        "--specs", required=True,
        help="objectives file: TOML ([[tool.repro.slo.objectives]]) "
             "or JSON ({\"objectives\": [...]})",
    )
    slo.add_argument("--top", type=int, default=3,
                     help="bottlenecks quoted in violation 'why' fields")
    slo.add_argument(
        "--no-critical", action="store_true",
        help="skip the critical-path analysis behind the 'why' fields",
    )
    slo.add_argument("--json", action="store_true",
                     help="print the slo_report.json document instead")
    slo.add_argument("--output", default=None,
                     help="also write slo_report.json into this directory")

    critical = sub.add_parser(
        "critical",
        help="critical-path latency attribution for a traced run",
    )
    critical.add_argument(
        "path", help="trace.jsonl file or run directory containing one"
    )
    critical.add_argument("--top", type=int, default=5,
                          help="bottleneck rows to show")
    critical.add_argument("--json", action="store_true",
                          help="print the canonical JSON document instead")
    critical.add_argument("--output", default=None,
                          help="also write critical.json into this directory")

    bench = sub.add_parser(
        "bench", help="benchmark artifact reports"
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    bench_report = bsub.add_parser(
        "report", help="summarize the root BENCH_*.json artifacts"
    )
    bench_report.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_*.json files",
    )
    bench_report.add_argument(
        "--append", action="store_true",
        help="append a dated summary row to BENCH_TRAJECTORY.jsonl",
    )
    bench_report.add_argument("--json", action="store_true",
                              help="print the summary as JSON")

    profile = sub.add_parser(
        "profile", help="phase-profiled runs and profile reports"
    )
    psub = profile.add_subparsers(dest="profile_command", required=True)
    profile_run = psub.add_parser(
        "run", help="a traced run with the phase profiler on"
    )
    _add_trace_options(profile_run)
    profile_report = psub.add_parser(
        "report", help="render a saved profile.json phase tree"
    )
    profile_report.add_argument(
        "path", help="profile.json file or run directory containing one"
    )
    profile_report.add_argument("--max-depth", type=int, default=None,
                                help="truncate the tree at this depth")

    # `lint` forwards everything to repro.analysis (handled in main()
    # before parsing, because argparse.REMAINDER drops leading options);
    # registered here so it shows up in --help.
    sub.add_parser(
        "lint",
        help="run reprolint, the determinism static-analysis pass",
        add_help=False,
    )

    return parser


def _add_dataset(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("msd", "ligo"), default="msd")


def _add_trace_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``trace`` and ``profile run``."""
    _add_dataset(parser)
    parser.add_argument("--mode", choices=("simulate", "train"),
                        default="simulate")
    parser.add_argument(
        "--allocator",
        choices=("uniform", "wip", "stream", "heft", "hpa", "oracle"),
        default="uniform",
        help="allocator for --mode simulate",
    )
    parser.add_argument("--burst", type=int, default=0,
                        help="burst scenario index for --mode simulate")
    parser.add_argument("--steps", type=int, default=30,
                        help="control windows for --mode simulate")
    parser.add_argument("--iterations", type=int, default=1,
                        help="Algorithm 2 iterations for --mode train")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", required=True,
                        help="run directory for trace.jsonl + manifest.json")


def _cmd_train(args) -> int:
    from dataclasses import replace

    from repro.core.agent import MirasAgent
    from repro.core.persistence import save_agent
    from repro.eval.experiments import dataset_preset, make_env
    from repro.rl.distributed import EnvSpec
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    config = (
        preset["paper_config"]() if args.scale == "paper"
        else preset["fast_config"]()
    )
    policy_overrides = {}
    if args.rollout_batch is not None:
        policy_overrides["rollout_batch"] = args.rollout_batch
    if args.collect_mode is not None:
        policy_overrides["collect_mode"] = args.collect_mode
    if args.collect_workers is not None:
        policy_overrides["collect_workers"] = args.collect_workers
    if policy_overrides:
        config = replace(
            config, policy=replace(config.policy, **policy_overrides)
        )
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=preset["rates"],
    )
    env_spec = EnvSpec.make(
        "repro.eval.experiments:build_training_env", dataset=args.dataset
    )
    agent = MirasAgent(env, config, seed=args.seed, env_spec=env_spec)
    agent.iterate(iterations=args.iterations, verbose=True)
    print(f"training trace: "
          f"{[round(r.eval_reward, 1) for r in agent.results]}")
    if args.output:
        path = save_agent(args.output, agent)
        print(f"agent saved to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.baselines.miras_alloc import MirasAllocator
    from repro.core.persistence import load_agent
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import evaluate_allocator, make_env
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    scenario = _scenario(preset, args.burst)
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=dict(scenario.background_rates),
    )
    agent = load_agent(args.agent, env)
    result = evaluate_allocator(
        MirasAllocator(agent=agent), env, scenario, args.steps
    )
    _print_result(result)
    return 0


def _make_allocator(name: str):
    from repro.baselines.autoscaler import HpaAllocator
    from repro.baselines.drs import DrsAllocator
    from repro.baselines.heft import HeftAllocator
    from repro.baselines.oracle import OracleAllocator
    from repro.baselines.static_alloc import (
        ProportionalToWipAllocator,
        UniformAllocator,
    )

    allocators = {
        "uniform": UniformAllocator,
        "wip": ProportionalToWipAllocator,
        "stream": DrsAllocator,
        "heft": HeftAllocator,
        "hpa": HpaAllocator,
        "oracle": OracleAllocator,
    }
    return allocators[name]()


def _cmd_simulate(args) -> int:
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import evaluate_allocator, make_env
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    scenario = _scenario(preset, args.burst)
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=dict(scenario.background_rates),
    )
    result = evaluate_allocator(
        _make_allocator(args.allocator), env, scenario, args.steps
    )
    _print_result(result)
    return 0


def _cmd_model_accuracy(args) -> int:
    from repro.eval.experiments import experiment_fig5_model_accuracy
    from repro.eval.reporting import format_table

    result = experiment_fig5_model_accuracy(
        args.dataset,
        collect_steps=args.collect_steps,
        test_steps=args.test_steps,
        seed=args.seed,
    )
    print(format_table(
        ["signal", "rmse fixed", "rmse iterative", "corr fixed",
         "corr iterative"],
        [
            ["reward (mean WIP)", result.rmse_fixed_reward,
             result.rmse_iterative_reward,
             result.correlation_fixed_reward(),
             result.correlation_iterative_reward()],
            ["WIP dim 0", result.rmse_fixed_w0,
             result.rmse_iterative_w0, "-", "-"],
        ],
        title=f"Model accuracy ({args.dataset}), Fig. 5 protocol",
    ))
    return 0


def _cmd_experiments(args) -> int:
    from repro.eval.parallel import (
        default_cells,
        results_to_json,
        run_cells,
        write_results,
    )

    names = [n.strip() for n in args.experiments.split(",") if n.strip()]
    cells = default_cells(
        experiments=names, replicates=args.replicates, quick=args.quick
    )
    results = run_cells(
        cells,
        root_seed=args.seed,
        workers=args.workers,
        telemetry_dir=args.telemetry,
    )
    for label, payload in results.items():
        print(f"{label}: done (seed {payload['seed']})", file=sys.stderr)
    if args.telemetry:
        from repro.telemetry.fleet import FLEET_MANIFEST_FILENAME

        print(
            f"fleet telemetry merged under {args.telemetry} "
            f"({FLEET_MANIFEST_FILENAME})",
            file=sys.stderr,
        )
    if args.output:
        path = write_results(args.output, results)
        print(f"results written to {path}", file=sys.stderr)
    else:
        print(results_to_json(results), end="")
    return 0


def _cmd_trace(args) -> int:
    return _traced_run(args, profile=False)


def _traced_run(args, profile: bool) -> int:
    """Shared body of ``trace`` and ``profile run``.

    Writes ``trace.jsonl``, ``manifest.json``, ``metrics.json`` and
    ``metrics.prom`` into the run directory; with ``profile=True`` also
    ``profile.json`` (the one artifact outside the determinism contract).
    """
    from pathlib import Path

    import repro
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import make_env
    from repro.sim.system import SystemConfig
    from repro.telemetry import (
        JsonlSink,
        MetricsSink,
        PhaseProfiler,
        RunManifest,
        Tracer,
        render_profile,
        wall_time_now,
        write_manifest,
        write_metrics,
        write_profile,
    )

    outdir = Path(args.output)
    prog = "profile run" if profile else "trace"
    profiler = PhaseProfiler() if profile else None
    sink = MetricsSink(JsonlSink(outdir / "trace.jsonl"))
    preset = dataset_preset(args.dataset)
    config_snapshot = {
        "dataset": args.dataset,
        "mode": args.mode,
        "consumer_budget": preset["budget"],
        "seed": args.seed,
    }
    with Tracer(sink) as tracer:
        if args.mode == "simulate":
            from repro.eval.runner import evaluate_allocator

            scenario = _scenario(preset, args.burst)
            config_snapshot.update(
                allocator=args.allocator, burst=args.burst, steps=args.steps
            )
            command = (
                f"{prog} --dataset {args.dataset} --mode simulate "
                f"--allocator {args.allocator} --burst {args.burst} "
                f"--steps {args.steps} --seed {args.seed}"
            )
            env = make_env(
                preset["builder"](),
                config=SystemConfig(consumer_budget=preset["budget"]),
                seed=args.seed,
                background_rates=dict(scenario.background_rates),
                tracer=tracer,
                profiler=profiler,
            )
            result = evaluate_allocator(
                _make_allocator(args.allocator), env, scenario, args.steps
            )
            print(
                f"{result.allocator} on {result.scenario}: "
                f"aggregated reward {result.aggregated_reward():.0f}, "
                f"mean response time {result.mean_response_time():.1f} s"
            )
        else:
            from repro.core.agent import MirasAgent

            config_snapshot.update(iterations=args.iterations)
            command = (
                f"{prog} --dataset {args.dataset} --mode train "
                f"--iterations {args.iterations} --seed {args.seed}"
            )
            env = make_env(
                preset["builder"](),
                config=SystemConfig(consumer_budget=preset["budget"]),
                seed=args.seed,
                background_rates=preset["rates"],
                tracer=tracer,
                profiler=profiler,
            )
            agent = MirasAgent(env, preset["fast_config"](), seed=args.seed)
            agent.iterate(iterations=args.iterations, verbose=True)
    manifest = RunManifest(
        run_name=outdir.name,
        seed=args.seed,
        config=config_snapshot,
        command=command,
        package_version=repro.__version__,
        sim_time_end=float(env.system.loop.now),
        records_written=tracer.records_written,
        counters=dict(tracer.counters),
        wall_time=wall_time_now(),
    )
    manifest_path = write_manifest(outdir, manifest)
    metrics_path = write_metrics(outdir, sink)
    print(f"trace: {outdir / 'trace.jsonl'} "
          f"({tracer.records_written} records)")
    print(f"manifest: {manifest_path}")
    print(f"metrics: {metrics_path}")
    if profiler is not None:
        profile_path = write_profile(outdir, profiler)
        print(f"profile: {profile_path}\n")
        print(render_profile(profiler))
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.telemetry import load_trace, read_manifest, render_report
    from repro.telemetry.manifest import MANIFEST_FILENAME

    path = Path(args.path)
    records = load_trace(path, validate=args.validate)
    if args.json:
        import json

        from repro.telemetry import report_json

        print(json.dumps(report_json(records), sort_keys=True, indent=2))
        return 0
    print(render_report(records, title=f"Trace report: {args.path}"))
    manifest_path = (path if path.is_dir() else path.parent) / MANIFEST_FILENAME
    if manifest_path.exists():
        manifest = read_manifest(manifest_path)
        print(
            f"\nrun {manifest.run_name!r}: seed {manifest.seed}, "
            f"repro {manifest.package_version}, "
            f"schema v{manifest.schema_version}, "
            f"command `repro {manifest.command}`"
        )
    return 0


def _cmd_metrics(args) -> int:
    from pathlib import Path

    from repro.telemetry import (
        aggregate_trace,
        load_trace,
        render_metrics,
        snapshot_to_json,
        write_metrics,
    )

    records = load_trace(Path(args.path), validate=args.validate)
    sink = aggregate_trace(records)
    if args.output:
        target = write_metrics(args.output, sink)
        print(f"metrics written to {target.parent}", file=sys.stderr)
    if args.serve is not None:
        from repro.telemetry import MetricsServer

        server = MetricsServer(sink.to_prometheus, port=args.serve)
        host, port = server.address
        print(f"serving metrics at http://{host}:{port}/metrics "
              f"(Ctrl-C to stop)", file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0
    if args.format == "json":
        print(snapshot_to_json(sink.snapshot()), end="")
    elif args.format == "prom":
        print(sink.to_prometheus(), end="")
    else:
        print(render_metrics(sink.snapshot()))
    return 0


def _cmd_slo(args) -> int:
    from pathlib import Path

    from repro.telemetry import (
        aggregate_trace,
        analyze_trace,
        evaluate_slos,
        load_trace,
        load_slo_specs,
        render_slo_result,
        slo_report_json,
        write_slo_report,
    )

    specs = load_slo_specs(args.specs)
    records = load_trace(Path(args.path))
    sink = aggregate_trace(records)
    critical = None if args.no_critical else analyze_trace(records)
    result = evaluate_slos(specs, sink.snapshot(), critical=critical)
    if args.output:
        target = write_slo_report(args.output, result)
        print(f"slo report written to {target}", file=sys.stderr)
    if args.json:
        print(slo_report_json(result), end="")
    else:
        print(render_slo_result(result))
    return 0 if result.passed else 1


def _cmd_critical(args) -> int:
    from pathlib import Path

    from repro.telemetry import (
        analyze_trace,
        critical_report_json,
        load_trace,
        render_critical,
    )
    from repro.telemetry.critical import CRITICAL_FILENAME

    report = analyze_trace(load_trace(Path(args.path)))
    document = critical_report_json(report, top_k=args.top)
    if args.output:
        outdir = Path(args.output)
        outdir.mkdir(parents=True, exist_ok=True)
        target = outdir / CRITICAL_FILENAME
        target.write_text(document, encoding="utf-8")
        print(f"critical report written to {target}", file=sys.stderr)
    if args.json:
        print(document, end="")
    else:
        print(render_critical(report, top_k=args.top))
    return 0


def _flatten_bench(value, prefix=""):
    """Dotted-path numeric leaves of one BENCH_*.json document."""
    out = {}
    if isinstance(value, dict):
        for key in sorted(value):
            out.update(_flatten_bench(value[key], f"{prefix}{key}."))
    elif isinstance(value, bool):
        out[prefix[:-1]] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix[:-1]] = float(value)
    return out


def _cmd_bench(args) -> int:
    import json
    from pathlib import Path

    from repro.eval.reporting import format_table
    from repro.telemetry import wall_time_now

    root = Path(args.root)
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    summary = {}
    for artifact in artifacts:
        name = artifact.stem.replace("BENCH_", "")
        document = json.loads(artifact.read_text(encoding="utf-8"))
        summary[name] = _flatten_bench(document)
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        rows = [
            [name, metric, f"{value:.6g}"]
            for name in sorted(summary)
            for metric, value in sorted(summary[name].items())
        ]
        print(format_table(
            ["benchmark", "metric", "value"], rows,
            title=f"Benchmark artifacts under {root.resolve()}",
        ))
    if args.append:
        row = {"wall_time": wall_time_now(), "benchmarks": summary}
        trajectory = root / "BENCH_TRAJECTORY.jsonl"
        with trajectory.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"trajectory row appended to {trajectory}", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    if args.profile_command == "run":
        return _traced_run(args, profile=True)
    from pathlib import Path

    from repro.telemetry import read_profile, render_profile

    document = read_profile(Path(args.path))
    print(render_profile(document, max_depth=args.max_depth))
    return 0


def _scenario(preset, index):
    bursts = preset["bursts"]
    if not 0 <= index < len(bursts):
        raise SystemExit(
            f"burst index {index} out of range (0-{len(bursts) - 1})"
        )
    return bursts[index]


def _print_result(result) -> None:
    from repro.eval.reporting import format_series_table

    print(format_series_table(
        {
            "WIP": result.wip_series(),
            "reward": result.reward_series(),
            "resp time (s)": result.response_time_series(),
        },
        title=f"{result.allocator} on {result.scenario}",
    ))
    print(
        f"\naggregated reward: {result.aggregated_reward():.0f}   "
        f"mean response time: {result.mean_response_time():.1f} s   "
        f"completions: {result.total_completions()}"
    )


_COMMANDS = {
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "simulate": _cmd_simulate,
    "model-accuracy": _cmd_model_accuracy,
    "experiments": _cmd_experiments,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
    "slo": _cmd_slo,
    "critical": _cmd_critical,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
