"""Command-line interface.

::

    python -m repro train --dataset msd --output runs/msd-agent
    python -m repro evaluate --agent runs/msd-agent --dataset msd --burst 0
    python -m repro simulate --dataset msd --allocator heft --burst 0
    python -m repro model-accuracy --dataset ligo
    python -m repro trace --dataset msd --output runs/trace-msd
    python -m repro report runs/trace-msd

``train`` runs Algorithm 2; ``evaluate`` deploys a saved agent on a paper
burst scenario; ``simulate`` runs a heuristic allocator (no learning);
``model-accuracy`` reproduces the Fig. 5 protocol; ``trace`` reruns a
simulation or training run with telemetry on, writing a JSONL trace and a
run manifest; ``report`` summarizes such a trace into utilization,
queue-depth, container-lifecycle, and training-curve tables
(docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIRAS reproduction (ICDCS 2019) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a MIRAS agent (Algorithm 2)")
    _add_dataset(train)
    train.add_argument("--scale", choices=("fast", "paper"), default="fast")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--iterations", type=int, default=None,
                       help="override the preset's iteration count")
    train.add_argument("--output", default=None,
                       help="directory to save the trained agent to")

    evaluate = sub.add_parser(
        "evaluate", help="deploy a saved agent on a burst scenario"
    )
    _add_dataset(evaluate)
    evaluate.add_argument("--agent", required=True,
                          help="directory written by `repro train --output`")
    evaluate.add_argument("--burst", type=int, default=0,
                          help="burst scenario index (0-2)")
    evaluate.add_argument("--steps", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=1000)

    simulate = sub.add_parser(
        "simulate", help="run a heuristic allocator on a burst (no learning)"
    )
    _add_dataset(simulate)
    simulate.add_argument(
        "--allocator",
        choices=("uniform", "wip", "stream", "heft", "hpa", "oracle"),
        default="uniform",
    )
    simulate.add_argument("--burst", type=int, default=0)
    simulate.add_argument("--steps", type=int, default=30)
    simulate.add_argument("--seed", type=int, default=1000)

    accuracy = sub.add_parser(
        "model-accuracy", help="Fig. 5 model-accuracy protocol"
    )
    _add_dataset(accuracy)
    accuracy.add_argument("--collect-steps", type=int, default=1200)
    accuracy.add_argument("--test-steps", type=int, default=100)
    accuracy.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser(
        "trace", help="run a traced simulation/training run (JSONL + manifest)"
    )
    _add_dataset(trace)
    trace.add_argument("--mode", choices=("simulate", "train"),
                       default="simulate")
    trace.add_argument(
        "--allocator",
        choices=("uniform", "wip", "stream", "heft", "hpa", "oracle"),
        default="uniform",
        help="allocator for --mode simulate",
    )
    trace.add_argument("--burst", type=int, default=0,
                       help="burst scenario index for --mode simulate")
    trace.add_argument("--steps", type=int, default=30,
                       help="control windows for --mode simulate")
    trace.add_argument("--iterations", type=int, default=1,
                       help="Algorithm 2 iterations for --mode train")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--output", required=True,
                       help="run directory for trace.jsonl + manifest.json")

    report = sub.add_parser(
        "report", help="summarize a trace file or run directory"
    )
    report.add_argument("path",
                        help="trace.jsonl file or directory containing one")
    report.add_argument("--validate", action="store_true",
                        help="check every record against its schema")

    # `lint` forwards everything to repro.analysis (handled in main()
    # before parsing, because argparse.REMAINDER drops leading options);
    # registered here so it shows up in --help.
    sub.add_parser(
        "lint",
        help="run reprolint, the determinism static-analysis pass",
        add_help=False,
    )

    return parser


def _add_dataset(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("msd", "ligo"), default="msd")


def _cmd_train(args) -> int:
    from repro.core.agent import MirasAgent
    from repro.core.persistence import save_agent
    from repro.eval.experiments import dataset_preset, make_env
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    config = (
        preset["paper_config"]() if args.scale == "paper"
        else preset["fast_config"]()
    )
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=preset["rates"],
    )
    agent = MirasAgent(env, config, seed=args.seed)
    agent.iterate(iterations=args.iterations, verbose=True)
    print(f"training trace: "
          f"{[round(r.eval_reward, 1) for r in agent.results]}")
    if args.output:
        path = save_agent(args.output, agent)
        print(f"agent saved to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.baselines.miras_alloc import MirasAllocator
    from repro.core.persistence import load_agent
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import evaluate_allocator, make_env
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    scenario = _scenario(preset, args.burst)
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=dict(scenario.background_rates),
    )
    agent = load_agent(args.agent, env)
    result = evaluate_allocator(
        MirasAllocator(agent=agent), env, scenario, args.steps
    )
    _print_result(result)
    return 0


def _make_allocator(name: str):
    from repro.baselines.autoscaler import HpaAllocator
    from repro.baselines.drs import DrsAllocator
    from repro.baselines.heft import HeftAllocator
    from repro.baselines.oracle import OracleAllocator
    from repro.baselines.static_alloc import (
        ProportionalToWipAllocator,
        UniformAllocator,
    )

    allocators = {
        "uniform": UniformAllocator,
        "wip": ProportionalToWipAllocator,
        "stream": DrsAllocator,
        "heft": HeftAllocator,
        "hpa": HpaAllocator,
        "oracle": OracleAllocator,
    }
    return allocators[name]()


def _cmd_simulate(args) -> int:
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import evaluate_allocator, make_env
    from repro.sim.system import SystemConfig

    preset = dataset_preset(args.dataset)
    scenario = _scenario(preset, args.burst)
    env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=args.seed,
        background_rates=dict(scenario.background_rates),
    )
    result = evaluate_allocator(
        _make_allocator(args.allocator), env, scenario, args.steps
    )
    _print_result(result)
    return 0


def _cmd_model_accuracy(args) -> int:
    from repro.eval.experiments import experiment_fig5_model_accuracy
    from repro.eval.reporting import format_table

    result = experiment_fig5_model_accuracy(
        args.dataset,
        collect_steps=args.collect_steps,
        test_steps=args.test_steps,
        seed=args.seed,
    )
    print(format_table(
        ["signal", "rmse fixed", "rmse iterative", "corr fixed",
         "corr iterative"],
        [
            ["reward (mean WIP)", result.rmse_fixed_reward,
             result.rmse_iterative_reward,
             result.correlation_fixed_reward(),
             result.correlation_iterative_reward()],
            ["WIP dim 0", result.rmse_fixed_w0,
             result.rmse_iterative_w0, "-", "-"],
        ],
        title=f"Model accuracy ({args.dataset}), Fig. 5 protocol",
    ))
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    import repro
    from repro.eval.experiments import dataset_preset
    from repro.eval.runner import make_env
    from repro.sim.system import SystemConfig
    from repro.telemetry import (
        JsonlSink,
        RunManifest,
        Tracer,
        wall_time_now,
        write_manifest,
    )

    outdir = Path(args.output)
    tracer = Tracer(JsonlSink(outdir / "trace.jsonl"))
    preset = dataset_preset(args.dataset)
    config_snapshot = {
        "dataset": args.dataset,
        "mode": args.mode,
        "consumer_budget": preset["budget"],
        "seed": args.seed,
    }
    if args.mode == "simulate":
        from repro.eval.runner import evaluate_allocator

        scenario = _scenario(preset, args.burst)
        config_snapshot.update(
            allocator=args.allocator, burst=args.burst, steps=args.steps
        )
        command = (
            f"trace --dataset {args.dataset} --mode simulate "
            f"--allocator {args.allocator} --burst {args.burst} "
            f"--steps {args.steps} --seed {args.seed}"
        )
        env = make_env(
            preset["builder"](),
            config=SystemConfig(consumer_budget=preset["budget"]),
            seed=args.seed,
            background_rates=dict(scenario.background_rates),
            tracer=tracer,
        )
        result = evaluate_allocator(
            _make_allocator(args.allocator), env, scenario, args.steps
        )
        print(
            f"{result.allocator} on {result.scenario}: "
            f"aggregated reward {result.aggregated_reward():.0f}, "
            f"mean response time {result.mean_response_time():.1f} s"
        )
    else:
        from repro.core.agent import MirasAgent

        config_snapshot.update(iterations=args.iterations)
        command = (
            f"trace --dataset {args.dataset} --mode train "
            f"--iterations {args.iterations} --seed {args.seed}"
        )
        env = make_env(
            preset["builder"](),
            config=SystemConfig(consumer_budget=preset["budget"]),
            seed=args.seed,
            background_rates=preset["rates"],
            tracer=tracer,
        )
        agent = MirasAgent(env, preset["fast_config"](), seed=args.seed)
        agent.iterate(iterations=args.iterations, verbose=True)
    tracer.close()
    manifest = RunManifest(
        run_name=outdir.name,
        seed=args.seed,
        config=config_snapshot,
        command=command,
        package_version=repro.__version__,
        sim_time_end=float(env.system.loop.now),
        records_written=tracer.records_written,
        counters=dict(tracer.counters),
        wall_time=wall_time_now(),
    )
    manifest_path = write_manifest(outdir, manifest)
    print(f"trace: {outdir / 'trace.jsonl'} "
          f"({tracer.records_written} records)")
    print(f"manifest: {manifest_path}")
    return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.telemetry import load_trace, read_manifest, render_report
    from repro.telemetry.manifest import MANIFEST_FILENAME

    path = Path(args.path)
    records = load_trace(path, validate=args.validate)
    print(render_report(records, title=f"Trace report: {args.path}"))
    manifest_path = (path if path.is_dir() else path.parent) / MANIFEST_FILENAME
    if manifest_path.exists():
        manifest = read_manifest(manifest_path)
        print(
            f"\nrun {manifest.run_name!r}: seed {manifest.seed}, "
            f"repro {manifest.package_version}, "
            f"schema v{manifest.schema_version}, "
            f"command `repro {manifest.command}`"
        )
    return 0


def _scenario(preset, index):
    bursts = preset["bursts"]
    if not 0 <= index < len(bursts):
        raise SystemExit(
            f"burst index {index} out of range (0-{len(bursts) - 1})"
        )
    return bursts[index]


def _print_result(result) -> None:
    from repro.eval.reporting import format_series_table

    print(format_series_table(
        {
            "WIP": result.wip_series(),
            "reward": result.reward_series(),
            "resp time (s)": result.response_time_series(),
        },
        title=f"{result.allocator} on {result.scenario}",
    ))
    print(
        f"\naggregated reward: {result.aggregated_reward():.0f}   "
        f"mean response time: {result.mean_response_time():.1f} s   "
        f"completions: {result.total_completions()}"
    )


_COMMANDS = {
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "simulate": _cmd_simulate,
    "model-accuracy": _cmd_model_accuracy,
    "trace": _cmd_trace,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
