#!/usr/bin/env python3
"""Capacity planning: derive the paper's consumer budgets analytically.

Section VI-A4 explains how a "good constraint" C was chosen: resources
should be sufficient for a feasible allocation to exist, but tight enough
that allocation quality matters.  This example derives that regime with
Jackson-network arithmetic (repro.eval.capacity) and verifies the
prediction against the simulator.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.baselines import DrsAllocator
from repro.eval.capacity import (
    expected_steady_state_wip,
    minimum_stable_allocation,
    per_task_arrival_rates,
    recommended_budget,
)
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.system import SystemConfig
from repro.workflows import build_ligo_ensemble, build_msd_ensemble, render_ensemble
from repro.workload.bursts import (
    BurstScenario,
    LIGO_BACKGROUND_RATES,
    MSD_BACKGROUND_RATES,
)


def plan(name, ensemble, rates, paper_budget):
    print(f"=== {name} ===")
    task_rates = per_task_arrival_rates(ensemble, rates)
    minimum = minimum_stable_allocation(ensemble, rates)
    print("per-microservice arrival rates and minimum stable consumers:")
    for task_type in ensemble.task_types:
        task = task_type.name
        print(
            f"  {task:12s} lambda={task_rates[task]:.3f}/s "
            f"service={task_type.mean_service_time:g}s "
            f"-> m_min={minimum[task]}"
        )
    total_min = sum(minimum.values())
    recommendation = recommended_budget(ensemble, rates, headroom=1.5)
    print(f"minimum stable total: {total_min};   1.5x headroom "
          f"recommendation: {recommendation};   paper's C: {paper_budget}")

    predicted = expected_steady_state_wip(ensemble, rates, minimum)
    print(f"Jackson prediction of steady-state WIP at m_min: "
          f"{ {k: round(v, 1) for k, v in predicted.items()} }")
    print()
    return minimum


def verify_msd(minimum):
    """Check the analytic plan holds up in the discrete-event simulator."""
    ensemble = build_msd_ensemble()
    env = make_env(
        ensemble,
        config=SystemConfig(consumer_budget=14),
        seed=3,
        background_rates=MSD_BACKGROUND_RATES,
    )
    allocation = np.array(
        [minimum[name] for name in ensemble.task_names()], dtype=np.int64
    )
    env.reset()
    wip_sums = []
    for _ in range(40):
        state, _, _ = env.step(allocation)
        wip_sums.append(float(state.sum()))
    tail = np.mean(wip_sums[20:])
    print(f"simulated steady-state total WIP at m_min (MSD): {tail:.1f} "
          f"(bounded => stable, matching the queueing prediction)")
    assert tail < 200, "minimum stable allocation diverged in simulation"


def main():
    plan("MSD", build_msd_ensemble(), MSD_BACKGROUND_RATES, 14)
    plan("LIGO", build_ligo_ensemble(), LIGO_BACKGROUND_RATES, 30)
    minimum = minimum_stable_allocation(
        build_msd_ensemble(), MSD_BACKGROUND_RATES
    )
    verify_msd(minimum)


if __name__ == "__main__":
    main()
