#!/usr/bin/env python3
"""Train once, save, and deploy the agent in a fresh process/environment.

Demonstrates the persistence API: a trained MIRAS agent (config,
interaction dataset, environment model, actor/critic networks) round-trips
through a plain directory of .npz/.json files, then controls a *new*
system instance — the intended production flow where training happens
offline and the learnt policy is shipped to the live allocator.

Run:  python examples/save_and_deploy.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import MirasAgent, MirasConfig
from repro.core.persistence import load_agent, save_agent
from repro.eval.experiments import dataset_preset
from repro.eval.runner import evaluate_allocator, make_env
from repro.baselines import MirasAllocator
from repro.sim.system import SystemConfig
from repro.workload.bursts import MSD_BURSTS


def main():
    preset = dataset_preset("msd")

    # --- Offline: train and save -----------------------------------------
    train_env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=0,
        background_rates=preset["rates"],
    )
    agent = MirasAgent(train_env, MirasConfig.msd_fast(), seed=0)
    print("Training (scaled-down Algorithm 2)...")
    agent.iterate(verbose=True)

    directory = Path(tempfile.mkdtemp(prefix="miras-agent-"))
    save_agent(directory, agent)
    files = sorted(p.name for p in directory.iterdir())
    print(f"\nSaved agent to {directory}:")
    for name in files:
        print(f"  {name}")

    # --- Online: load into a brand-new environment and deploy -------------
    live_env = make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=2026,  # different seed: a different "day" of traffic
        background_rates=preset["rates"],
    )
    loaded = load_agent(directory, live_env)

    state = np.array([40.0, 20.0, 10.0, 5.0])
    assert np.allclose(
        loaded.ddpg.act_greedy(state), agent.ddpg.act_greedy(state)
    ), "loaded policy must match the trained one exactly"
    print("\nLoaded policy matches the trained policy bit-for-bit.")

    result = evaluate_allocator(
        MirasAllocator(agent=loaded), live_env, MSD_BURSTS[0], steps=25
    )
    print(
        f"\nDeployed on {MSD_BURSTS[0].name}: aggregated reward "
        f"{result.aggregated_reward():.0f}, "
        f"{result.total_completions()} workflows completed, "
        f"final WIP {result.wip_series()[-1]:.0f}"
    )


if __name__ == "__main__":
    main()
