#!/usr/bin/env python3
"""Bring your own workflow ensemble.

The paper notes MIRAS "could also be easily adapted to other microservice
systems" (Section I).  This example defines a custom genomics-flavoured
ensemble from scratch — task types, DAG topologies, arrival rates — and
runs the full pipeline on it: emulation, MIRAS training, and a comparison
against the WIP-proportional heuristic on a burst.

Run:  python examples/custom_workflow.py
"""

import numpy as np

from repro.baselines import MirasAllocator, ProportionalToWipAllocator
from repro.core import MirasAgent, MirasConfig
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.system import SystemConfig
from repro.workflows.dag import TaskType, WorkflowEnsemble, WorkflowType
from repro.workload.bursts import BurstScenario


def build_genomics_ensemble() -> WorkflowEnsemble:
    """A small genomics pipeline: align/variant-call/annotate flows."""
    task_types = [
        TaskType("QC", 1.5, cv=0.3),          # read quality control
        TaskType("Align", 5.0, cv=0.6),       # reference alignment
        TaskType("CallVariants", 4.0, cv=0.5),
        TaskType("Annotate", 2.5, cv=0.4),
        TaskType("Report", 1.0, cv=0.3),
    ]
    workflow_types = [
        # Fast QC-only screening.
        WorkflowType("Screen", edges=[("QC", "Report")]),
        # Standard variant-calling pipeline.
        WorkflowType(
            "CallPipeline",
            edges=[
                ("QC", "Align"),
                ("Align", "CallVariants"),
                ("CallVariants", "Annotate"),
                ("Annotate", "Report"),
            ],
        ),
        # Re-annotation of existing calls (skips alignment).
        WorkflowType(
            "Reannotate",
            edges=[("CallVariants", "Annotate"), ("Annotate", "Report")],
        ),
    ]
    return WorkflowEnsemble("Genomics", task_types, workflow_types)


def main():
    ensemble = build_genomics_ensemble()
    budget = 16
    rates = {"Screen": 0.10, "CallPipeline": 0.05, "Reannotate": 0.04}
    print(f"Custom ensemble: {ensemble!r}")
    demand = ensemble.service_demand(rates)
    print("Steady-state demand (consumer-seconds/second):")
    for task, load in demand.items():
        print(f"  {task:14s} {load:.2f}")
    print(f"Total {sum(demand.values()):.2f} of budget {budget}\n")

    # Train MIRAS on the custom system.
    env = make_env(
        ensemble,
        config=SystemConfig(consumer_budget=budget),
        seed=0,
        background_rates=rates,
    )
    config = MirasConfig.msd_fast()  # schedule shape transfers as-is
    agent = MirasAgent(env, config, seed=0)
    print("Training MIRAS on the genomics ensemble...")
    agent.iterate(verbose=True)

    # Head-to-head on a submission burst.
    scenario = BurstScenario(
        "genomics-burst",
        {"Screen": 100, "CallPipeline": 60, "Reannotate": 40},
        rates,
    )
    print("\nBurst evaluation (20 windows):")
    for allocator in (MirasAllocator(agent=agent), ProportionalToWipAllocator()):
        eval_env = make_env(
            ensemble,
            config=SystemConfig(consumer_budget=budget),
            seed=100,
            background_rates=rates,
        )
        result = evaluate_allocator(allocator, eval_env, scenario, steps=20)
        print(
            f"  {allocator.name:18s} aggregated reward "
            f"{result.aggregated_reward():10.0f}   completions "
            f"{result.total_completions():4d}   final WIP "
            f"{result.wip_series()[-1]:.0f}"
        )


if __name__ == "__main__":
    main()
