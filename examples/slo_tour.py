#!/usr/bin/env python3
"""End-to-end SLO conformance tour (docs/OBSERVABILITY.md).

Runs a traced MSD burst, aggregates the trace into metrics, evaluates a
set of declarative SLO objectives against the snapshot, and attributes
each request's end-to-end latency to causal stages — the same pipeline
the ``repro slo`` and ``repro critical`` CLIs wrap:

1. **Traced run** — a burst plus a consumer crash, with every event
   captured through a ``Tracer(MetricsSink(JsonlSink(...)))`` stack.
2. **SLO verdicts** — objectives (a P99 deadline, a completion floor, a
   burn-rate window) evaluated against the metrics snapshot.  Live and
   replayed traces yield byte-identical ``slo_report.json``.
3. **Critical path** — per-request stage attribution (queue / startup /
   retry / service) whose durations sum *bitwise-exactly* to the
   measured response time, and the top-K bottleneck ranking that feeds
   the SLO report's "why" fields.

Run:  python examples/slo_tour.py
"""

import tempfile
from pathlib import Path

from repro.sim import MicroserviceWorkflowSystem, SystemConfig
from repro.sim.faults import crash_one_consumer
from repro.telemetry import (
    JsonlSink,
    MetricsSink,
    SloSpec,
    Tracer,
    aggregate_run,
    analyze_trace,
    evaluate_slos,
    load_trace,
    render_critical,
    render_slo_result,
    slo_report_json,
)
from repro.workflows import build_msd_ensemble
from repro.workload import MSD_BACKGROUND_RATES, PoissonArrivalProcess

OBJECTIVES = [
    SloSpec("p99-deadline", "response_time_p99", 600.0),
    SloSpec("queue-wait-p95", "queue_wait_p95", 300.0),
    SloSpec("completion-floor", "completions", 20.0, op=">="),
    SloSpec("p95-burn", "response_p95", 30.0, window=4, burn_budget=0.5),
]


def traced_run(outdir: Path) -> MetricsSink:
    """A burst + crash run with full telemetry capture."""
    sink = MetricsSink(JsonlSink(outdir / "trace.jsonl"))
    with Tracer(sink) as tracer:
        system = MicroserviceWorkflowSystem(
            build_msd_ensemble(),
            SystemConfig(consumer_budget=14),
            seed=7,
            tracer=tracer,
        )
        PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
        system.inject_burst({"Type3": 15})
        system.apply_allocation([4, 4, 3, 3])
        system.run_window()
        crash_one_consumer(system.microservices["Preprocess"])
        for _ in range(4):
            system.run_window()
        print(f"simulated {system.loop.now:.0f} s, "
              f"{tracer.records_written} trace records")
    return sink


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        outdir = Path(tmp)
        live_sink = traced_run(outdir)

        # -- SLO verdicts against the live snapshot -----------------------
        records = load_trace(outdir)
        critical = analyze_trace(records)
        result = evaluate_slos(
            OBJECTIVES, live_sink.snapshot(), critical=critical
        )
        print()
        print(render_slo_result(result))

        # -- live == replay, by construction ------------------------------
        replay = evaluate_slos(
            OBJECTIVES, aggregate_run(outdir).snapshot(), critical=critical
        )
        identical = slo_report_json(result) == slo_report_json(replay)
        print(f"\nlive and replayed slo_report.json identical: {identical}")

        # -- where the latency went ---------------------------------------
        print()
        print(render_critical(critical, top_k=5))


if __name__ == "__main__":
    main()
