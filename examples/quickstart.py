#!/usr/bin/env python3
"""Quickstart: train MIRAS on the MSD workload and deploy it on a burst.

This walks the full pipeline of the paper in a few seconds:

1. build the emulated microservice workflow system (MSD ensemble, C=14),
2. attach a Poisson background workload,
3. run the iterative model-based RL procedure (Algorithm 2, scaled down),
4. deploy the learnt policy against a request burst and watch it drain.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MicroserviceEnv,
    MicroserviceWorkflowSystem,
    MirasAgent,
    MirasConfig,
    SystemConfig,
    build_msd_ensemble,
)
from repro.workload import MSD_BACKGROUND_RATES, PoissonArrivalProcess


def main():
    # 1. The emulated infrastructure: queues, consumers, TDS, 3-node cluster.
    ensemble = build_msd_ensemble()
    system = MicroserviceWorkflowSystem(
        ensemble, SystemConfig(consumer_budget=14), seed=0
    )
    print(f"Built {system!r}")
    print(f"  task types (microservices): {ensemble.task_names()}")
    print(f"  workflow types:             {ensemble.workflow_names()}")

    # 2. Background Poisson workload (Section VI-A1).
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    env = MicroserviceEnv(system)

    # 3. MIRAS: iterate model learning <-> policy learning (Algorithm 2).
    #    msd_fast() is the scaled-down schedule; use MirasConfig.msd_paper()
    #    for the paper's full 12x1000-step run.
    agent = MirasAgent(env, MirasConfig.msd_fast(), seed=0)
    print("\nTraining (Algorithm 2)...")
    agent.iterate(verbose=True)
    print(f"training trace (eval reward/iteration): "
          f"{[round(r.eval_reward, 1) for r in agent.results]}")

    # 4. Deploy: inject a burst and let the policy drain it.
    print("\nDeploying the learnt policy on a 150-request burst:")
    state = env.reset()
    system.inject_burst({"Type1": 60, "Type2": 40, "Type3": 50})
    state = env.observe()
    for step in range(20):
        allocation = agent.act(state)
        state, reward, observation = env.step(allocation)
        print(
            f"  window {step:2d}: allocation={allocation.tolist()} "
            f"WIP={state.astype(int).tolist()} "
            f"completed={observation.total_completions}"
        )
    print(f"\nAll requests conserved: {system.conservation_ok()}")


if __name__ == "__main__":
    main()
