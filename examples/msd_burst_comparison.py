#!/usr/bin/env python3
"""Compare MIRAS against the paper's baselines on an MSD burst (Fig. 7).

Trains MIRAS, a model-free DDPG agent with the same interaction budget,
identifies MONAD on the same dataset, and evaluates all of them plus DRS
("stream") and HEFT on the paper's first MSD burst condition
(300/200/300 requests of Type1/2/3).

Run:  python examples/msd_burst_comparison.py          # scaled-down
      python examples/msd_burst_comparison.py --paper  # paper-scale (slow)
"""

import argparse

from repro.core import MirasConfig
from repro.eval.experiments import experiment_fig7_msd_comparison
from repro.eval.reporting import format_comparison, format_series_table
from repro.workload.bursts import MSD_BURSTS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper-scale schedule (12,000 interactions; slow)",
    )
    parser.add_argument("--steps", type=int, default=30,
                        help="evaluation windows per burst")
    args = parser.parse_args()

    config = MirasConfig.msd_paper() if args.paper else MirasConfig.msd_fast()
    print(
        f"Training budget: {config.steps_per_iteration} steps x "
        f"{config.iterations} iterations "
        f"(~{config.steps_per_iteration * config.iterations} real interactions)"
    )

    results = experiment_fig7_msd_comparison(
        steps=args.steps,
        config=config,
        scenarios=MSD_BURSTS[:1],
        seed=0,
    )

    print()
    print(format_comparison(results, "mean_response_time",
                            title="Mean response time (s) — lower is better"))
    print()
    print(format_comparison(results, "aggregated_reward",
                            title="Aggregated reward (Eq. 1) — higher is better"))
    print()

    scenario = MSD_BURSTS[0].name
    series = {
        name: result.response_time_series()
        for name, result in results[scenario].items()
    }
    print(format_series_table(
        series, title=f"Per-window response time (s) — {scenario} (Fig. 7a)"
    ))


if __name__ == "__main__":
    main()
