#!/usr/bin/env python3
"""A tour of the emulated microservice workflow infrastructure (Fig. 1).

No learning here — this example exercises the substrate directly so you
can see the moving parts the paper's Section II/V describe:

- the TDS ensemble answering dependency queries (with a replica failure),
- queues with ack/redelivery,
- consumer scaling with container start-up latency,
- the two scale-down modes (graceful drain vs kill + redeliver),
- per-window observations and the Eq. (1) reward.

Run:  python examples/infrastructure_tour.py
"""

import numpy as np

from repro.sim import MicroserviceWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble, render_ensemble


def main():
    ensemble = build_msd_ensemble()
    print(render_ensemble(ensemble))
    system = MicroserviceWorkflowSystem(
        ensemble,
        SystemConfig(consumer_budget=14, scale_down_mode="kill"),
        seed=7,
    )

    # --- TDS: dependency lookups survive a replica failure ---------------
    print("TDS dependency queries (Fig. 2 analog):")
    for workflow in ensemble.workflow_names():
        entries = system.tds.entry_tasks(workflow)
        print(f"  {workflow}: entry={entries}")
    system.tds.fail_server(0)
    print(f"  replica 0 failed -> still serving: "
          f"{system.tds.successors('Type3', 'Preprocess')}")
    system.tds.recover_server(0)

    # --- Submit work and scale up ----------------------------------------
    print("\nSubmitting 30 Type3 workflows (Ingest->Preprocess->{Segment,Analyze}):")
    system.inject_burst({"Type3": 30})
    print(f"  WIP after injection: {system.wip_vector().astype(int).tolist()}")

    system.apply_allocation([4, 4, 3, 3])
    observation = system.run_window()
    print(f"  window 0: WIP={observation.wip.astype(int).tolist()} "
          f"reward={observation.reward:.0f} "
          f"(consumers took 5-10 s to start)")

    # --- Kill semantics: scale a busy service to zero ---------------------
    print("\nScaling Preprocess to zero mid-flight (kill mode):")
    preprocess = system.microservices["Preprocess"]
    before = preprocess.queue.redelivered_total
    system.apply_allocation([4, 0, 5, 5])
    redelivered = preprocess.queue.redelivered_total - before
    print(f"  {redelivered} in-flight request(s) nacked and redelivered "
          f"(none lost)")

    # Restore a sane allocation and let the burst finish.
    system.apply_allocation([3, 5, 3, 3])
    for _ in range(12):
        observation = system.run_window()
    print(f"\nAfter 13 windows: WIP={system.wip_vector().astype(int).tolist()}")
    print(f"  workflows completed: {system.invoker.completed_total}/30")
    print(f"  request conservation holds: {system.conservation_ok()}")

    # --- Cluster state -----------------------------------------------------
    print(f"\nCluster load by node: {system.cluster.load_by_node()} "
          f"(least-loaded placement keeps imbalance <= 1)")
    print(f"TDS reads per replica: {system.tds.read_distribution()}")


if __name__ == "__main__":
    main()
