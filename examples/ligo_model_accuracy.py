#!/usr/bin/env python3
"""Learn environment models for MSD and LIGO and evaluate them (Fig. 5).

Reproduces the paper's model evaluation protocol: collect transitions with
random actions that change every 4 windows, train the predictive model
(3x20 for MSD, 1x20 for LIGO, per Section VI-A3), then compare

- fixed-input one-step predictions, and
- iterative rollouts (each prediction fed back as the next input)

against the ground-truth trace.  The paper's qualitative findings should
hold: fixed-input tracks the truth closely, iterative drifts more, and
LIGO (9 microservices) drifts more than MSD (4).

Run:  python examples/ligo_model_accuracy.py
"""

from repro.eval.experiments import experiment_fig5_model_accuracy
from repro.eval.reporting import format_series_table, format_table


def main():
    rows = []
    for dataset, steps in (("msd", 800), ("ligo", 1200)):
        print(f"Collecting {steps} transitions and training the {dataset} "
              f"model...")
        result = experiment_fig5_model_accuracy(
            dataset, collect_steps=steps, test_steps=60, seed=1
        )
        rows.append(
            [
                dataset,
                result.rmse_fixed_reward,
                result.rmse_iterative_reward,
                result.correlation_fixed_reward(),
                result.correlation_iterative_reward(),
            ]
        )
        if dataset == "msd":
            series = {
                "ground truth": result.ground_truth_reward[:20].tolist(),
                "fixed input": result.fixed_reward[:20].tolist(),
                "iterative": result.iterative_reward[:20].tolist(),
            }
            print()
            print(format_series_table(
                series,
                title="MSD mean-WIP trace, first 20 test windows (Fig. 5 left)",
            ))
            print()

    print(format_table(
        ["dataset", "rmse fixed", "rmse iterative", "corr fixed",
         "corr iterative"],
        rows,
        title="Model accuracy summary (Fig. 5)",
    ))
    print("\nExpected shape: rmse(iterative) > rmse(fixed) on both datasets, "
          "and corr(iterative) lower for ligo than msd (its 9-dimensional "
          "rollouts accumulate error faster) — RMSEs are not comparable "
          "across datasets because their WIP scales differ.")


if __name__ == "__main__":
    main()
