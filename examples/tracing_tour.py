#!/usr/bin/env python3
"""A tour of the telemetry subsystem (docs/OBSERVABILITY.md).

Runs the MSD system with tracing on — a burst, a consumer crash, and one
tiny iteration of Algorithm 2 — then reads the trace back and renders the
same report the ``repro report`` CLI prints:

- ``trace.jsonl``: one JSON record per line (arrivals, queue publishes,
  container lifecycle, fault injections, window spans, training metrics),
  all timestamped with the *simulation* clock, so a rerun with the same
  seed produces an identical trace,
- ``manifest.json``: the run's provenance (seed, config snapshot,
  package/schema versions, counters, wall time).

Run:  python examples/tracing_tour.py
"""

import tempfile
from pathlib import Path

from repro.core import MirasAgent
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.rl.ddpg import DDPGConfig
from repro.sim import MicroserviceEnv, MicroserviceWorkflowSystem, SystemConfig
from repro.sim.faults import crash_one_consumer
from repro.telemetry import (
    JsonlSink,
    MetricsSink,
    RunManifest,
    Tracer,
    aggregate_trace,
    load_trace,
    read_manifest,
    render_report,
    snapshot_to_json,
    wall_time_now,
    write_manifest,
)
from repro.workflows import build_msd_ensemble
from repro.workload import MSD_BACKGROUND_RATES, PoissonArrivalProcess

#: A deliberately tiny Algorithm 2 config: enough to emit every training
#: metric (model/epoch_loss, train/eval_reward, ddpg/*, ...) in seconds.
TINY_CONFIG = MirasConfig(
    model=ModelConfig(hidden_sizes=(8,), epochs=3),
    policy=PolicyConfig(
        ddpg=DDPGConfig(hidden_sizes=(16,), batch_size=8),
        rollout_length=5,
        rollouts_per_iteration=2,
        patience=2,
    ),
    steps_per_iteration=20,
    reset_interval=10,
    iterations=1,
    eval_steps=3,
)


def run_traced(outdir: Path, seed: int = 7) -> RunManifest:
    """One traced MSD run: burst + fault + tiny training; returns manifest."""
    # The tracer is a context manager: the sink chain is flushed and
    # closed on exit, even if the run raises.  The MetricsSink tees every
    # record into the streaming aggregation engine on its way to disk.
    metrics = MetricsSink(JsonlSink(outdir / "trace.jsonl"))
    with Tracer(metrics) as tracer:
        system = MicroserviceWorkflowSystem(
            build_msd_ensemble(),
            SystemConfig(consumer_budget=14),
            seed=seed,
            tracer=tracer,
        )
        PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)

        # A hand-driven burst with a mid-flight container crash: watch
        # for event.fault and event.redeliver records in the trace.
        system.inject_burst({"Type3": 20})
        system.apply_allocation([4, 4, 3, 3])
        system.run_window()
        crash_one_consumer(system.microservices["Preprocess"])
        system.run_window()

        # One tiny Algorithm 2 iteration on the same (traced) system:
        # the agent inherits the system's tracer, so model losses, DDPG
        # losses, parameter-noise sigma and eval rewards land in the
        # same trace.
        agent = MirasAgent(MicroserviceEnv(system), TINY_CONFIG, seed=seed)
        agent.iterate()

    # Live aggregates vs. offline replay of the trace we just wrote:
    # identical by construction (same records, same aggregator code).
    live = snapshot_to_json(metrics.snapshot())
    replayed = snapshot_to_json(
        aggregate_trace(load_trace(outdir)).snapshot()
    )
    assert live == replayed, "live and replayed metrics diverged"

    manifest = RunManifest(
        run_name=outdir.name,
        seed=seed,
        config={"dataset": "msd", "consumer_budget": 14},
        command="examples/tracing_tour.py",
        package_version=__import__("repro").__version__,
        sim_time_end=float(system.loop.now),
        records_written=tracer.records_written,
        counters=dict(tracer.counters),
        wall_time=wall_time_now(),
    )
    write_manifest(outdir, manifest)
    return manifest


def main():
    with tempfile.TemporaryDirectory() as tmp:
        outdir = Path(tmp) / "tracing-tour"
        manifest = run_traced(outdir)

        records = load_trace(outdir, validate=True)
        print(f"wrote {manifest.records_written} records to "
              f"{outdir / 'trace.jsonl'}")
        kinds = {}
        for record in records:
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        print("record kinds: "
              + ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())))
        faults = [r for r in records if r["kind"] == "event.fault"]
        print(f"fault injections: "
              f"{[(r['fault'], r['target']) for r in faults]}")

        print()
        print(render_report(records, title="Tracing tour (MSD, seed 7)"))

        reloaded = read_manifest(outdir)
        print(f"\nmanifest round-trip ok: "
              f"{reloaded.deterministic_dict() == manifest.deterministic_dict()}")


if __name__ == "__main__":
    main()
