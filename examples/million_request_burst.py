#!/usr/bin/env python3
"""Simulate a one-million-request MSD burst on the batched substrate.

The serial substrate dispatches one event at a time and scans every
consumer per dispatch; at operator scale (thousands of consumers,
hundreds of thousands of queued requests) that is hours of wall-clock
per experiment.  ``BatchedWorkflowSystem`` runs the same simulation —
byte-identical traces, equal metrics snapshots — on a numpy
struct-of-arrays request pool with batched queue operations, and
replays entire windows vectorised when the fast-path preconditions
hold (see docs/SIMULATOR.md).

This example injects 1,000,000 workflow requests (3.25 million tasks)
as a single MSD burst and runs windows until the burst drains, printing
throughput and fast-path statistics.

Run:  PYTHONPATH=src python examples/million_request_burst.py --quick
      PYTHONPATH=src python examples/million_request_burst.py
"""

import argparse
import time

from repro.sim import BatchedWorkflowSystem, SystemConfig
from repro.workflows import build_msd_ensemble

# Allocations are weighted toward the upstream services (Ingest,
# Preprocess) so downstream queues accumulate backlogs: the vectorised
# window replay only consumes each queue's start-of-window prefix, so a
# perfectly balanced pipeline keeps downstream queues near-empty and
# forces the exact fallback every window (docs/SIMULATOR.md,
# "Fast-path preconditions").
FULL = dict(
    consumer_budget=8192,
    window_length=240.0,
    max_windows=40,
    burst={"Type1": 500_000, "Type2": 250_000, "Type3": 250_000},
    allocation=[2800, 2800, 1800, 792],
)
QUICK = dict(
    consumer_budget=256,
    window_length=60.0,
    max_windows=12,
    burst={"Type1": 2_000, "Type2": 1_000, "Type3": 1_000},
    allocation=[88, 88, 56, 24],
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="4,000-request smoke run instead of the full million",
    )
    args = parser.parse_args()
    scale = QUICK if args.quick else FULL

    ensemble = build_msd_ensemble()
    system = BatchedWorkflowSystem(
        ensemble,
        SystemConfig(
            consumer_budget=scale["consumer_budget"],
            window_length=scale["window_length"],
        ),
        seed=0,
    )
    system.apply_allocation(scale["allocation"])

    total = sum(scale["burst"].values())
    print(f"injecting {total:,} workflow requests "
          f"({scale['consumer_budget']} consumers) ...")
    system.inject_burst(scale["burst"])

    start = time.perf_counter()
    windows = 0
    while (system.invoker.completed_total < total
           and windows < scale["max_windows"]):
        system.run_window()
        windows += 1
    elapsed = time.perf_counter() - start

    tasks = sum(ms.tasks_completed for ms in system.microservices.values())
    print(f"completed {system.invoker.completed_total:,}/{total:,} workflows "
          f"({tasks:,} tasks) in {elapsed:.1f}s over {windows} windows")
    print(f"throughput: {tasks / elapsed:,.0f} tasks/s")
    print(f"fast windows: {system.fast_windows}/{windows}, "
          f"aborts: {system.fast_aborts} "
          f"(reasons: {dict(sorted(system.fast_abort_reasons.items()))})")
    for name, ms in system.microservices.items():
        print(f"  {name:<12} completed {ms.tasks_completed:>9,}  "
              f"queue depth {len(ms.fifo):>9,}")
    print(f"request conservation holds: {system.conservation_ok()}")


if __name__ == "__main__":
    main()
