"""Legacy setup shim: enables `pip install -e .` in offline environments
without the `wheel` package (falls back to `setup.py develop`)."""

from setuptools import setup

setup()
