"""Ablation — parameter-space vs action-space exploration (Section IV-D).

The paper: "Directly imposing exploration noise to the output action
actually performs poorly in our system ... actions added by exploration
noise often violate our constraints on total number of consumers, leading
to invalid exploration."

This bench trains two MIRAS agents with identical budgets, one exploring
with adaptive parameter-space noise (the paper's choice), one with
Gaussian action-space noise, and counts how often each exploration step
produced an action off the budget simplex (which the action-noise agent
must repair by projection).

Expected shape (asserted): parameter noise produces **zero** constraint
violations; action noise violates on a large fraction of exploration
steps.
"""

from benchmarks.conftest import emit, run_once
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import ablation_exploration_noise
from repro.eval.reporting import format_table
from repro.rl.ddpg import DDPGConfig


def _config():
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(20, 20, 20), epochs=25),
        policy=PolicyConfig(
            ddpg=DDPGConfig(hidden_sizes=(64, 64), batch_size=32),
            rollout_length=15,
            rollouts_per_iteration=15,
            patience=5,
        ),
        steps_per_iteration=200,
        reset_interval=25,
        iterations=3,
        eval_steps=15,
    )


def test_parameter_vs_action_noise(benchmark):
    out = run_once(
        benchmark, ablation_exploration_noise, "msd",
        config=_config(), seed=0,
    )

    emit()
    emit(format_table(
        ["exploration", "explore steps", "constraint violations",
         "violation rate", "best eval reward"],
        [
            [
                mode,
                stats["exploration_actions"],
                stats["constraint_violations"],
                stats["constraint_violations"]
                / max(stats["exploration_actions"], 1),
                stats["best_eval_reward"],
            ]
            for mode, stats in out.items()
        ],
        title="Exploration-noise ablation (Section IV-D)",
    ))

    param = out["parameter"]
    action = out["action-gaussian"]
    assert param["constraint_violations"] == 0
    assert action["constraint_violations"] > 0.3 * action["exploration_actions"]
