"""Observability micro-benchmarks: aggregation, exposition, and the
cost of having telemetry compiled in but switched off.

Not a paper figure — these guard the observability subsystem's two
performance contracts (docs/OBSERVABILITY.md):

- the **NULL path** (disabled tracer/profiler) must stay within the 2%
  overhead budget against ``bench_substrate_throughput``'s untraced
  window throughput — gated by ``run_observability_bench.py --check``,
- the **enabled path** (MetricsSink tee, aggregation replay, Prometheus
  rendering) should be cheap enough to leave on for any traced run.
"""

import numpy as np

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.telemetry import (
    MemorySink,
    MetricsSink,
    NULL_PROFILER,
    NULL_TRACER,
    Tracer,
    aggregate_trace,
)
from repro.workflows import build_msd_ensemble
from repro.workload import PoissonArrivalProcess
from repro.workload.bursts import MSD_BACKGROUND_RATES

#: Guard evaluations per timed call in the disabled-path benchmarks:
#: large enough that the loop body dominates the call overhead.
GUARD_BATCH = 10_000


def _loaded_system(tracer=None, profiler=None):
    system = MicroserviceWorkflowSystem(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=14),
        seed=0,
        tracer=tracer,
        profiler=profiler,
    )
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    system.inject_burst({"Type1": 200, "Type2": 100, "Type3": 100})
    system.apply_allocation([4, 4, 3, 3])
    return system


def _sample_trace(windows: int = 5):
    """Records from a short traced run of the loaded MSD system."""
    sink = MemorySink()
    system = _loaded_system(tracer=Tracer(sink))
    for _ in range(windows):
        system.run_window()
    return list(sink.records)


def test_metrics_aggregation_throughput(benchmark):
    """Records/second through the streaming aggregation engine.

    This is the replay path of ``repro metrics`` and the per-record cost
    a live :class:`MetricsSink` adds on top of its downstream sink.
    """
    records = _sample_trace()

    result = benchmark(aggregate_trace, records)
    assert result.aggregator.snapshot()["families"]


def test_prometheus_rendering(benchmark):
    """Rendering the text exposition format from a populated registry."""
    sink = aggregate_trace(_sample_trace())

    text = benchmark(sink.to_prometheus)
    assert "repro_response_time_seconds_bucket" in text


def test_window_throughput_with_metrics_sink(benchmark):
    """run_window with the full live tee: Tracer -> MetricsSink -> memory.

    Compare with ``test_simulator_window_throughput_traced`` (plain
    MemorySink) for the marginal cost of live aggregation.
    """
    sink = MetricsSink(MemorySink())
    system = _loaded_system(tracer=Tracer(sink))

    benchmark(system.run_window)
    assert system.conservation_ok()
    assert sink.aggregator.snapshot()["families"]


def test_disabled_tracer_guard(benchmark):
    """Cost of ``if tracer.enabled:`` at an instrumented site, per batch.

    This is the *entire* disabled-path cost a hot loop pays per site:
    one attribute read and a branch.  The standalone runner divides the
    per-batch time by :data:`GUARD_BATCH` to get per-site nanoseconds.
    """
    tracer = NULL_TRACER

    def guards():
        hits = 0
        for _ in range(GUARD_BATCH):
            if tracer.enabled:
                hits += 1  # pragma: no cover - tracer is disabled
        return hits

    assert benchmark(guards) == 0


def test_disabled_profiler_guard(benchmark):
    """Cost of ``if profiler.enabled:`` at an instrumented site, per batch."""
    profiler = NULL_PROFILER

    def guards():
        hits = 0
        for _ in range(GUARD_BATCH):
            if profiler.enabled:
                hits += 1  # pragma: no cover - profiler is disabled
        return hits

    assert benchmark(guards) == 0


def test_histogram_observe(benchmark):
    """Histogram ingest cost (bucket increment + sorted-value insert)."""
    from repro.telemetry.metrics import Histogram, RESPONSE_TIME_BUCKETS

    values = np.random.default_rng(0).uniform(0, 2000, GUARD_BATCH).tolist()

    def observe_all():
        hist = Histogram(RESPONSE_TIME_BUCKETS)
        for value in values:
            hist.observe(value)
        return hist

    hist = benchmark(observe_all)
    assert hist.count == GUARD_BATCH
