"""Batched-substrate throughput benchmark: requests/second, CI-gated.

Measures the serial and batched substrates on identical scenarios and
writes ``BENCH_substrate.json`` at the repo root:

- **paper scale** (consumer budget 14, MSD burst) — informational; the
  serial substrate is already fast here and the batched one pays its
  per-window overhead on tiny windows.
- **production scale** (consumer budget 4096, tens of thousands of
  workflows) — the gated scenario.  The serial per-event dispatch scan
  is O(consumers), so this is where an operator-scale simulation lives
  or dies; the batched substrate must be >= ``SPEEDUP_FLOOR`` times
  faster (``--check`` exits non-zero otherwise; CI runs that).
- **million-request demo** (``--million``) — batched substrate only: a
  one-million-workflow MSD burst, reported as tasks/second.

Every measured pair also asserts semantic equivalence (identical task
counts; full ``substrate_snapshot`` equality at paper scale), so the
speedup number can never come from simulating something different.

Usage::

    PYTHONPATH=src python benchmarks/run_substrate_bench.py           # all
    PYTHONPATH=src python benchmarks/run_substrate_bench.py --check   # CI gate
    PYTHONPATH=src python benchmarks/run_substrate_bench.py --quick   # smoke
    PYTHONPATH=src python benchmarks/run_substrate_bench.py --million # demo
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim import (
    BatchedWorkflowSystem,
    MicroserviceWorkflowSystem,
    SystemConfig,
    substrate_snapshot,
)
from repro.workflows import build_msd_ensemble

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_substrate.json"

#: The CI gate: batched must beat serial by at least this factor on the
#: production-scale scenario (docs/PERFORMANCE.md quotes the measured
#: numbers; .github/workflows/ci.yml runs ``--check``).
SPEEDUP_FLOOR = 10.0

PAPER_SCALE = dict(
    consumer_budget=14,
    window_length=30.0,
    windows=40,
    burst={"Type1": 200, "Type2": 100, "Type3": 100},
)
PRODUCTION_SCALE = dict(
    consumer_budget=4096,
    window_length=120.0,
    windows=12,
    burst={"Type1": 20000, "Type2": 10000, "Type3": 10000},
)
# Weighted toward upstream services so downstream backlogs accumulate
# and the vectorised window replay engages (a balanced pipeline keeps
# downstream queues near-empty, which starves the replay's
# start-of-window prefix and forces the exact fallback — see
# docs/SIMULATOR.md, "Fast-path preconditions").
MILLION_SCALE = dict(
    consumer_budget=8192,
    window_length=240.0,
    windows=40,
    burst={"Type1": 500000, "Type2": 250000, "Type3": 250000},
    allocation=[2800, 2800, 1800, 792],
)
QUICK_SCALE = dict(
    consumer_budget=256,
    window_length=60.0,
    windows=6,
    burst={"Type1": 2000, "Type2": 1000, "Type3": 1000},
)


def build(cls, scale, seed=0):
    ensemble = build_msd_ensemble()
    system = cls(
        ensemble,
        SystemConfig(
            consumer_budget=scale["consumer_budget"],
            window_length=scale["window_length"],
        ),
        seed=seed,
    )
    allocation = scale.get("allocation")
    if allocation is None:
        per_service = max(
            1, scale["consumer_budget"] // ensemble.num_task_types
        )
        allocation = [per_service] * ensemble.num_task_types
    system.apply_allocation(allocation)
    system.inject_burst(scale["burst"])
    return system


def run_one(cls, scale):
    system = build(cls, scale)
    start = time.perf_counter()
    for _ in range(scale["windows"]):
        system.run_window()
    elapsed = time.perf_counter() - start
    tasks = sum(ms.tasks_completed for ms in system.microservices.values())
    workflows = system.invoker.completed_total
    assert system.conservation_ok(), "conservation violated during benchmark"
    return {
        "tasks_completed": tasks,
        "workflows_completed": workflows,
        "seconds": elapsed,
        "tasks_per_second": tasks / elapsed if elapsed else float("inf"),
        "fast_windows": getattr(system, "fast_windows", None),
        "fast_aborts": getattr(system, "fast_aborts", None),
    }


def run_pair(name, scale):
    print(f"[{name}] serial substrate ...", flush=True)
    serial = run_one(MicroserviceWorkflowSystem, scale)
    print(
        f"[{name}]   {serial['tasks_completed']:,} tasks in "
        f"{serial['seconds']:.2f}s = {serial['tasks_per_second']:,.0f} tasks/s"
    )
    print(f"[{name}] batched substrate ...", flush=True)
    batched = run_one(BatchedWorkflowSystem, scale)
    print(
        f"[{name}]   {batched['tasks_completed']:,} tasks in "
        f"{batched['seconds']:.2f}s = "
        f"{batched['tasks_per_second']:,.0f} tasks/s "
        f"(fast windows {batched['fast_windows']}/{scale['windows']}, "
        f"aborts {batched['fast_aborts']})"
    )
    if serial["tasks_completed"] != batched["tasks_completed"]:
        raise AssertionError(
            f"[{name}] substrates disagree: serial completed "
            f"{serial['tasks_completed']} tasks, batched "
            f"{batched['tasks_completed']} — equivalence is broken, the "
            f"speedup is meaningless"
        )
    speedup = serial["seconds"] / batched["seconds"]
    print(f"[{name}] speedup: {speedup:.1f}x")
    return {
        "scenario": {k: v for k, v in scale.items()},
        "serial": serial,
        "batched": batched,
        "speedup": speedup,
    }


def assert_snapshot_equivalence():
    """Paper-scale snapshot equality — cheap, runs on every invocation."""
    scale = dict(PAPER_SCALE, windows=8)
    serial = build(MicroserviceWorkflowSystem, scale)
    batched = build(BatchedWorkflowSystem, scale)
    for _ in range(scale["windows"]):
        serial.run_window()
        batched.run_window()
    if substrate_snapshot(serial) != substrate_snapshot(batched):
        raise AssertionError(
            "substrate_snapshot mismatch between serial and batched — "
            "run tests/sim/test_batched_substrate.py to localise"
        )
    print("[equivalence] paper-scale snapshots equal after 8 windows")


def run_million():
    scale = MILLION_SCALE
    total = sum(scale["burst"].values())
    print(f"[million] injecting {total:,} workflow requests ...", flush=True)
    system = build(BatchedWorkflowSystem, scale)
    start = time.perf_counter()
    windows = 0
    while system.invoker.completed_total < total and windows < scale["windows"]:
        system.run_window()
        windows += 1
    elapsed = time.perf_counter() - start
    tasks = sum(ms.tasks_completed for ms in system.microservices.values())
    assert system.conservation_ok()
    print(
        f"[million] {system.invoker.completed_total:,}/{total:,} workflows, "
        f"{tasks:,} tasks in {elapsed:.1f}s over {windows} windows = "
        f"{tasks / elapsed:,.0f} tasks/s "
        f"(fast windows {system.fast_windows}, aborts {system.fast_aborts}, "
        f"reasons {dict(sorted(system.fast_abort_reasons.items()))})"
    )
    return {
        "scenario": {k: v for k, v in scale.items()},
        "workflows_submitted": total,
        "workflows_completed": system.invoker.completed_total,
        "tasks_completed": tasks,
        "seconds": elapsed,
        "tasks_per_second": tasks / elapsed,
        "windows": windows,
        "fast_windows": system.fast_windows,
        "fast_aborts": system.fast_aborts,
        "fast_abort_reasons": dict(sorted(system.fast_abort_reasons.items())),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit 1 unless production-scale speedup >= {SPEEDUP_FLOOR}x",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario only (smoke test; no JSON written)",
    )
    parser.add_argument(
        "--million",
        action="store_true",
        help="also run the million-request batched-only demo",
    )
    args = parser.parse_args(argv)

    assert_snapshot_equivalence()

    if args.quick:
        result = run_pair("quick", QUICK_SCALE)
        print(f"quick speedup {result['speedup']:.1f}x (informational)")
        return 0

    results = {
        "speedup_floor": SPEEDUP_FLOOR,
        "paper_scale": run_pair("paper", PAPER_SCALE),
        "production_scale": run_pair("production", PRODUCTION_SCALE),
    }
    if args.million:
        results["million_requests"] = run_million()

    speedup = results["production_scale"]["speedup"]
    results["gate_passed"] = speedup >= SPEEDUP_FLOOR
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT_PATH}")

    if args.check and not results["gate_passed"]:
        print(
            f"FAIL: production-scale speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
