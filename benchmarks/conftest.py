"""Shared configuration for the benchmark/reproduction harness.

Every bench regenerates one of the paper's figures (Figs. 5-8) or one of
its stated design trade-offs, using the exact code path of the paper-scale
experiment at a scaled-down step count (see DESIGN.md section 3).  Set
``REPRO_BENCH_SCALE=paper`` to run the full schedules instead (hours).
"""

import os
from pathlib import Path

import pytest

#: "fast" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "fast")

#: Where every bench's regenerated tables/series are appended (pytest
#: captures stdout of passing tests, so the file is the durable record).
RESULTS_FILE = Path(__file__).parent / "results" / "latest.txt"


def emit(text: str = "") -> None:
    """Print a reproduction table and append it to the results file."""
    print(text)
    RESULTS_FILE.parent.mkdir(exist_ok=True)
    with RESULTS_FILE.open("a") as handle:
        handle.write(text + "\n")


def is_paper_scale() -> bool:
    return SCALE == "paper"


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
