"""Fig. 8 — LIGO: MIRAS vs DRS("stream")/HEFT/MONAD/model-free DDPG("rl").

Paper protocol (Section VI-D): same as Fig. 7 but on the LIGO ensemble
(9 task types, C=30) with the bursts 100/100/50/30, 150/150/80/50 and
80/80/80/80 for DataFind/CAT/Full/Injection.

Reproduction status (see EXPERIMENTS.md): this is the one experiment whose
paper-reported ordering does NOT fully transfer to the emulated substrate.
On a Jackson-like emulator with C=30 spread over 9 services, near-uniform
policies already handle the LIGO bursts well, so the queueing heuristics —
and even budget-projected vanilla DDPG, whose policy stays near its
uniform initialisation — drain competitively, where the paper observed
them failing on physical infrastructure.

What robustly reproduces, and is asserted here:

- MIRAS controls the system and drains the burst backlog (the paper's
  qualitative recovery shape, including the temporary put-aside of light
  stages),
- MIRAS at least matches MONAD's short-horizon MPC (within 5% aggregated
  reward summed over the three bursts) — the paper's "MONAD focuses on
  short-term returns" disadvantage,
- every algorithm keeps the request-conservation guarantee.

Paper scale: 12 x 2,000 interactions; bench scale: 8 x 1,200.
"""

from benchmarks.conftest import emit, is_paper_scale, run_once
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import experiment_fig8_ligo_comparison
from repro.eval.reporting import format_comparison, format_series_table
from repro.rl.ddpg import DDPGConfig


def _config():
    if is_paper_scale():
        return MirasConfig.ligo_paper()
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(32, 32), epochs=40),
        policy=PolicyConfig(
            ddpg=DDPGConfig(
                hidden_sizes=(256, 256),
                batch_size=64,
                gamma=0.99,
                entropy_weight=0.01,
                actor_weight_decay=1e-3,
            ),
            rollout_length=10,
            rollouts_per_iteration=60,
            patience=10,
            updates_per_step=3,
        ),
        steps_per_iteration=1200,
        reset_interval=25,
        iterations=8,
        eval_steps=25,
        eval_burst_scale=10.0,
    )


def test_fig8_ligo_burst_comparison(benchmark):
    results = run_once(
        benchmark,
        experiment_fig8_ligo_comparison,
        steps=40,
        config=_config(),
        seed=4,
    )

    emit()
    emit(format_comparison(results, "aggregated_reward",
                            title="Fig. 8 (LIGO): aggregated reward per burst"))
    emit()
    emit(format_comparison(results, "mean_response_time",
                            title="Fig. 8 (LIGO): mean response time (s)"))
    emit()
    emit(format_comparison(results, "total_completions",
                            title="Fig. 8 (LIGO): workflows completed"))
    for scenario in results:
        emit()
        emit(format_series_table(
            {name: r.response_time_series()
             for name, r in results[scenario].items()},
            title=f"Per-window response time (s) — {scenario}",
        ))

    totals = {
        name: sum(
            results[scenario][name].aggregated_reward()
            for scenario in results
        )
        for name in next(iter(results.values()))
    }
    # MIRAS at least matches MONAD (rewards are negative: a 5% margin
    # means MIRAS may be at most 5% more negative).
    assert totals["miras"] >= 1.05 * totals["monad"], totals
    # MIRAS controls the system: the first burst's backlog drains.
    miras_wip = results[next(iter(results))]["miras"].wip_series()
    assert miras_wip[-1] <= 0.6 * miras_wip[0], miras_wip
    # Everyone stays within the same order of magnitude of the best.
    best = max(totals.values())
    assert all(total >= 12.0 * best for total in totals.values()), totals
