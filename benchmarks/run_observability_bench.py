#!/usr/bin/env python3
"""Observability overhead benchmark + regression gate.

Measures the observability subsystem's costs on the loaded MSD system
and writes ``BENCH_observability.json`` at the repository root:

- ``noop_overhead_pct`` — the **estimated** cost of the disabled
  telemetry path, computed machine-independently as::

      sites_per_window * disabled_guard_ns / window_ns * 100

  where ``sites_per_window`` is counted from an enabled run (each
  instrumentation site evaluates exactly one ``if tracer.enabled:``
  guard per record it would emit) and both timings come from the same
  process/machine, so the ratio transfers across hardware in a way raw
  throughput numbers do not.
- enabled-path overheads (memory sink, metrics tee) and the offline
  aggregation throughput, reported informationally.

``--check`` exits non-zero when ``noop_overhead_pct`` exceeds the 2%
budget that docs/OBSERVABILITY.md promises — this is the CI gate.

Run:  PYTHONPATH=src python benchmarks/run_observability_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.telemetry import (
    MemorySink,
    MetricsSink,
    NULL_PROFILER,
    NULL_TRACER,
    PhaseProfiler,
    Tracer,
    aggregate_trace,
)
from repro.workflows import build_msd_ensemble
from repro.workload import PoissonArrivalProcess
from repro.workload.bursts import MSD_BACKGROUND_RATES

#: The documented ceiling for the disabled path (docs/OBSERVABILITY.md).
BUDGET_PCT = 2.0

ARTIFACT = "BENCH_observability.json"

GUARD_LOOP = 200_000


def _loaded_system(tracer=None, profiler=None):
    system = MicroserviceWorkflowSystem(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=14),
        seed=0,
        tracer=tracer,
        profiler=profiler,
    )
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    system.inject_burst({"Type1": 200, "Type2": 100, "Type3": 100})
    system.apply_allocation([4, 4, 3, 3])
    return system


def _time_windows(windows: int, repeats: int, **system_kwargs) -> float:
    """Best-of-``repeats`` seconds for ``windows`` windows, fresh system each."""
    best = float("inf")
    for _ in range(repeats):
        system = _loaded_system(**system_kwargs)
        start = time.perf_counter()
        for _ in range(windows):
            system.run_window()
        best = min(best, time.perf_counter() - start)
    return best


def _guard_ns(obj) -> float:
    """Per-evaluation nanoseconds of ``if obj.enabled:`` in a tight loop."""
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        hits = 0
        for _ in range(GUARD_LOOP):
            if obj.enabled:
                hits += 1
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        assert hits == 0
    return best / GUARD_LOOP * 1e9


def run_benchmark(windows: int, repeats: int) -> dict:
    # Count instrumentation sites executed per window from an enabled run:
    # every emit site writes exactly one record when enabled, and would
    # evaluate exactly one guard when disabled.  Add the per-window
    # profiler guard in EventLoop.run_until.
    counting_sink = MemorySink()
    counted = _loaded_system(tracer=Tracer(counting_sink))
    for _ in range(windows):
        counted.run_window()
    records = list(counting_sink.records)
    sites_per_window = len(records) / windows + 1.0

    baseline_s = _time_windows(windows, repeats)
    window_ns = baseline_s / windows * 1e9

    tracer_guard_ns = _guard_ns(NULL_TRACER)
    profiler_guard_ns = _guard_ns(NULL_PROFILER)
    guard_ns = max(tracer_guard_ns, profiler_guard_ns)
    noop_overhead_pct = sites_per_window * guard_ns / window_ns * 100.0

    traced_s = _time_windows(
        windows, repeats, tracer=Tracer(MemorySink())
    )
    metrics_s = _time_windows(
        windows, repeats, tracer=Tracer(MetricsSink(MemorySink()))
    )
    profiled_s = _time_windows(
        windows, repeats,
        tracer=Tracer(MemorySink()), profiler=PhaseProfiler(),
    )

    start = time.perf_counter()
    aggregate_trace(records)
    aggregation_s = time.perf_counter() - start

    return {
        "artifact_version": 1,
        "budget_pct": BUDGET_PCT,
        "noop_overhead_pct": noop_overhead_pct,
        "disabled_guard_ns": {
            "tracer": tracer_guard_ns,
            "profiler": profiler_guard_ns,
        },
        "sites_per_window": sites_per_window,
        "window_seconds": {
            "untraced": baseline_s / windows,
            "traced_memory": traced_s / windows,
            "traced_metrics_tee": metrics_s / windows,
            "traced_profiled": profiled_s / windows,
        },
        "enabled_overhead_pct": {
            "traced_memory": (traced_s / baseline_s - 1.0) * 100.0,
            "traced_metrics_tee": (metrics_s / baseline_s - 1.0) * 100.0,
            "traced_profiled": (profiled_s / baseline_s - 1.0) * 100.0,
        },
        "aggregation": {
            "records": len(records),
            "records_per_second": len(records) / aggregation_s
            if aggregation_s > 0 else None,
        },
        "workload": {
            "dataset": "msd",
            "windows": windows,
            "repeats": repeats,
            "burst": {"Type1": 200, "Type2": 100, "Type3": 100},
        },
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--windows", type=int, default=5,
                        help="control windows per measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per configuration (best-of)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / ARTIFACT),
        help="where to write the JSON artifact",
    )
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the no-op overhead exceeds budget")
    args = parser.parse_args(argv)

    result = run_benchmark(args.windows, args.repeats)
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    print(f"wrote {args.output}")
    print(f"instrumentation sites/window: {result['sites_per_window']:.0f}")
    print(f"disabled guard: tracer "
          f"{result['disabled_guard_ns']['tracer']:.1f} ns, profiler "
          f"{result['disabled_guard_ns']['profiler']:.1f} ns")
    print(f"estimated no-op overhead: "
          f"{result['noop_overhead_pct']:.3f}% (budget {BUDGET_PCT}%)")
    for name, pct in result["enabled_overhead_pct"].items():
        print(f"enabled overhead [{name}]: {pct:+.1f}%")
    rps = result["aggregation"]["records_per_second"]
    if rps:
        print(f"aggregation throughput: {rps:,.0f} records/s")

    if args.check and result["noop_overhead_pct"] > BUDGET_PCT:
        print(
            f"FAIL: no-op overhead {result['noop_overhead_pct']:.3f}% "
            f"exceeds the {BUDGET_PCT}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
