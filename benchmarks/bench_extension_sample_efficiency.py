"""Extension — sample-efficiency learning curves (Sections I/III claim).

The paper argues model-based RL "achiev[es] much higher sample efficiency
than the model-free approaches" but only shows the endpoint (Figs. 7–8's
equal-budget comparison).  This bench plots the full learning curve:
policy quality (aggregated burst-episode reward) as a function of real
interactions consumed, for MIRAS and vanilla model-free DDPG.

Expected shape (asserted): at the first checkpoint — the low-interaction
regime the paper's argument is about — MIRAS's policy is clearly better
than the model-free agent's.  With several times more interactions the
model-free agent catches up, matching the paper's own concession that
"DDPG without predictive model could perform well when supplied with
sufficient training data".
"""

from benchmarks.conftest import emit, run_once
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import dataset_preset
from repro.eval.reporting import format_table
from repro.eval.runner import make_env
from repro.eval.sample_efficiency import sample_efficiency_curves
from repro.rl.ddpg import DDPGConfig
from repro.sim.system import SystemConfig


def _env_factory(seed):
    preset = dataset_preset("msd")
    return make_env(
        preset["builder"](),
        config=SystemConfig(consumer_budget=preset["budget"]),
        seed=seed,
        background_rates=preset["rates"],
    )


def test_sample_efficiency_curves(benchmark):
    config = MirasConfig(
        model=ModelConfig(hidden_sizes=(20, 20, 20), epochs=30),
        policy=PolicyConfig(
            ddpg=DDPGConfig(
                hidden_sizes=(128, 128),
                batch_size=64,
                gamma=0.99,
                entropy_weight=0.005,
                actor_weight_decay=1e-4,
            ),
            rollout_length=25,
            rollouts_per_iteration=30,
            patience=8,
            updates_per_step=2,
        ),
        steps_per_iteration=400,
        reset_interval=25,
        iterations=4,
        eval_steps=20,
    )
    result = run_once(
        benchmark,
        sample_efficiency_curves,
        _env_factory,
        config,
        checkpoints=4,
        eval_steps=20,
        eval_burst_scale=15.0,
        seed=0,
    )

    emit()
    rows = [
        [
            interactions,
            result.rewards("miras")[i],
            result.rewards("modelfree")[i],
        ]
        for i, interactions in enumerate(result.interactions("miras"))
    ]
    emit(format_table(
        ["real interactions", "MIRAS eval reward", "model-free eval reward"],
        rows,
        title="Sample efficiency: burst-episode reward vs real interactions "
              "(MSD)",
    ))

    # The sample-efficiency claim lives at the first checkpoint.
    assert result.rewards("miras")[0] > result.rewards("modelfree")[0], (
        result.curves
    )
