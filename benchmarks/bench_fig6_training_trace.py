"""Fig. 6 — MIRAS training traces for MSD (6a) and LIGO (6b).

Paper protocol (Section VI-C): alternate running the agent on the real
system (1,000 steps/iteration MSD, 2,000 LIGO), training the predictive
model, and training the policy on it; after each iteration evaluate the
policy on the real system for 25 (MSD) / 100 (LIGO) steps and report the
aggregated reward.

Expected shape (asserted): for MSD the trace improves substantially over
the run — the best-half mean and best iteration beat the first.  For LIGO
at sub-paper scale, the per-iteration *policy* scores are noisy (a lucky
first iteration is common in a 9-dimensional problem at a third of the
paper's data), so the asserted convergence signals are the robust ones:
the environment-model loss decreases in trend as D grows (the outer loop
of Algorithm 2 doing its job), and the best policy found stays within
noise of, or beats, the first iteration (keep_best semantics).  The paper
sees policy convergence around iteration 11 at full scale.

Bench scale: 6 iterations x 250 steps (MSD) / 6 x 1,200 (LIGO).
"""

import numpy as np

from benchmarks.conftest import emit, is_paper_scale, run_once
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import experiment_fig6_training_trace
from repro.eval.reporting import format_series_table
from repro.rl.ddpg import DDPGConfig


def _config(dataset):
    if is_paper_scale():
        return (
            MirasConfig.msd_paper() if dataset == "msd"
            else MirasConfig.ligo_paper()
        )
    if dataset == "msd":
        return MirasConfig(
            model=ModelConfig(hidden_sizes=(20, 20, 20), epochs=30),
            policy=PolicyConfig(
                ddpg=DDPGConfig(
                    hidden_sizes=(128, 128), batch_size=64, gamma=0.99
                ),
                rollout_length=25,
                rollouts_per_iteration=25,
                patience=6,
                updates_per_step=2,
            ),
            steps_per_iteration=250,
            reset_interval=25,
            iterations=6,
            eval_steps=25,
        )
    # LIGO's 9-dimensional problem needs a larger slice of the paper's
    # 2,000-step iterations to show the Fig. 6b shape.
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(32, 32), epochs=40),
        policy=PolicyConfig(
            ddpg=DDPGConfig(
                hidden_sizes=(256, 256), batch_size=64, gamma=0.99,
                entropy_weight=0.01, actor_weight_decay=3e-4,
            ),
            rollout_length=10,
            rollouts_per_iteration=60,
            patience=10,
            updates_per_step=3,
        ),
        steps_per_iteration=1200,
        reset_interval=25,
        iterations=6,
        eval_steps=25,
    )


def _report(dataset, results):
    trace = [r.eval_reward for r in results]
    emit()
    emit(format_series_table(
        {
            "eval reward": trace,
            "model loss": [r.model_loss for r in results],
            "|D|": [float(r.dataset_size) for r in results],
        },
        index_name="iteration",
        title=f"Fig. 6 ({dataset}): training trace "
              f"(aggregated eval reward per iteration)",
    ))
    return trace


def _assert_policy_learning(trace):
    first = trace[0]
    best = max(trace[1:])
    later_mean = float(np.mean(sorted(trace[1:])[len(trace[1:]) // 2:]))
    assert best > first, f"no iteration improved on the first: {trace}"
    assert later_mean > first, f"no sustained improvement: {trace}"


def test_fig6a_msd_training_trace(benchmark):
    results = run_once(
        benchmark, experiment_fig6_training_trace, "msd",
        config=_config("msd"), seed=3,
    )
    trace = _report("msd", results)
    _assert_policy_learning(trace)


def test_fig6b_ligo_training_trace(benchmark):
    results = run_once(
        benchmark, experiment_fig6_training_trace, "ligo",
        config=_config("ligo"), seed=4,
    )
    trace = _report("ligo", results)
    losses = [r.model_loss for r in results]
    # Model learning converges as D grows — the robust Fig. 6b signal at
    # this scale: a clear first-to-last drop and a decreasing trend.
    assert losses[-1] < 0.75 * losses[0], losses
    assert np.polyfit(range(len(losses)), losses, 1)[0] < 0, losses
    # Best policy found stays within noise of, or beats, iteration 0
    # (rewards are negative: 10% slack).
    assert max(trace) >= 1.10 * trace[0], trace
