"""Ablation — control-window length (Section VI-A2).

The paper: "We have tested 5s, 15s, and 30s, and 30s is the best option",
because container start-up (5-10 s) must be small relative to the window,
yet the controller must stay responsive.

This bench runs a reactive allocator over the same total simulated time
with 5 s / 15 s / 30 s windows on the first MSD burst and reports mean
response time plus the churn costs (consumers killed while still starting
— pure start-up waste — and busy kills).

Expected shape (asserted): shorter windows incur strictly more wasted
start-ups; 30 s response time is within a small factor of the best.
"""

from benchmarks.conftest import emit, run_once
from repro.eval.experiments import ablation_window_length
from repro.eval.reporting import format_table


def test_window_length_tradeoff(benchmark):
    out = run_once(
        benchmark,
        ablation_window_length,
        "msd",
        window_lengths=(5.0, 15.0, 30.0),
        steps_at_30s=35,
        seed=0,
    )

    emit()
    emit(format_table(
        ["window (s)", "mean resp (s)", "final WIP", "wasted startups",
         "busy kills", "completions"],
        [
            [w, s["mean_response_time"], s["final_wip"],
             s["wasted_startups"], s["busy_kills"], s["total_completions"]]
            for w, s in sorted(out.items())
        ],
        title="Window-length trade-off (Section VI-A2), MSD burst 1",
    ))

    # Start-up waste decreases with window length.
    assert out[5.0]["wasted_startups"] >= out[30.0]["wasted_startups"]
    # 30 s remains competitive on response time (within 25% of the best).
    best = min(s["mean_response_time"] for s in out.values())
    assert out[30.0]["mean_response_time"] <= 1.25 * best
