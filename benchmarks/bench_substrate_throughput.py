"""Substrate micro-benchmarks: raw simulator and learning-stack throughput.

Not a paper figure — these are conventional performance benchmarks so
regressions in the discrete-event engine or the numpy NN stack are caught.
They use pytest-benchmark's statistics properly (multiple rounds).
"""

import numpy as np

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.sim.batched import BatchedWorkflowSystem
from repro.sim.system import MicroserviceWorkflowSystem, SystemConfig
from repro.telemetry import MemorySink, Tracer
from repro.utils.rng import RngStream
from repro.workflows import build_msd_ensemble
from repro.workload import PoissonArrivalProcess
from repro.workload.bursts import MSD_BACKGROUND_RATES


def _loaded_system(tracer=None, cls=MicroserviceWorkflowSystem):
    system = cls(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=14),
        seed=0,
        tracer=tracer,
    )
    PoissonArrivalProcess(MSD_BACKGROUND_RATES).attach(system)
    system.inject_burst({"Type1": 200, "Type2": 100, "Type3": 100})
    system.apply_allocation([4, 4, 3, 3])
    return system


def test_simulator_window_throughput(benchmark):
    """Windows/second of the loaded MSD system under uniform allocation.

    This is the untraced path: every instrumentation site sees the
    disabled NULL_TRACER, so its cost per event is one attribute read and
    a branch.  docs/OBSERVABILITY.md quotes the <= 2% overhead budget
    against this benchmark.
    """
    system = _loaded_system()

    benchmark(system.run_window)
    assert system.conservation_ok()


def test_simulator_window_throughput_traced(benchmark):
    """Same workload with tracing on (in-memory sink).

    Comparing against ``test_simulator_window_throughput`` gives the cost
    of building and recording the trace dicts themselves — the enabled
    path, dominated by record construction, not the sink.
    """
    sink = MemorySink()
    system = _loaded_system(tracer=Tracer(sink))

    benchmark(system.run_window)
    assert system.conservation_ok()
    assert len(sink) > 0


def test_batched_window_throughput(benchmark):
    """Batched-substrate twin of ``test_simulator_window_throughput``.

    Same paper-scale workload on ``BatchedWorkflowSystem``; at 14
    consumers the speedup is modest (the batched substrate pays its
    per-window setup on tiny windows) but any regression in the batched
    per-event path shows up here without the minutes-long serial
    baseline that benchmarks/run_substrate_bench.py needs for the
    production-scale gate.
    """
    system = _loaded_system(cls=BatchedWorkflowSystem)

    benchmark(system.run_window)
    assert system.conservation_ok()


def test_batched_window_throughput_loaded(benchmark):
    """Batched substrate at a consumer budget where batching pays.

    512 consumers and a 4,000-workflow burst: the serial substrate's
    O(consumers) dispatch scan makes this scale painful, so only the
    batched system is benchmarked (run_substrate_bench.py measures the
    serial/batched pair and gates the speedup).
    """
    system = BatchedWorkflowSystem(
        build_msd_ensemble(),
        SystemConfig(consumer_budget=512, window_length=60.0),
        seed=0,
    )
    system.apply_allocation([176, 176, 112, 48])
    system.inject_burst({"Type1": 2000, "Type2": 1000, "Type3": 1000})

    benchmark(system.run_window)
    assert system.conservation_ok()


def test_environment_model_training_step(benchmark):
    """One epoch of environment-model training on 1,000 transitions."""
    rng = RngStream("bench", np.random.SeedSequence(0))
    dataset = TransitionDataset(4, 4)
    data_rng = np.random.default_rng(0)
    for _ in range(1000):
        dataset.add(
            data_rng.uniform(0, 100, 4),
            data_rng.uniform(0, 4, 4),
            data_rng.uniform(0, 100, 4),
        )
    model = EnvironmentModel(4, 4, hidden_sizes=(20, 20, 20), rng=rng)

    benchmark(model.fit, dataset, epochs=1)


def test_ddpg_update_step(benchmark):
    """One DDPG update (critic + actor + target sync) at paper-size nets."""
    agent = DDPGAgent(
        4,
        4,
        config=DDPGConfig(hidden_sizes=(256, 256, 256), batch_size=64),
        rng=RngStream("bench", np.random.SeedSequence(1)),
    )
    data_rng = np.random.default_rng(2)
    for _ in range(256):
        state = data_rng.uniform(0, 100, 4)
        agent.store(state, np.full(4, 0.25), -float(state.sum()), state)

    benchmark(agent.update)
