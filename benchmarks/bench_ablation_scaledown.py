"""Ablation — scale-down semantics: graceful drain vs kill + redeliver.

The paper relies on Kubernetes container destruction (5–10 s, SIGTERM
grace) plus the RabbitMQ ack mechanism so "task requests ... do not get
lost".  The emulator implements both ends of that spectrum:

- ``drain``: a removed busy consumer finishes its in-flight task
  (Terminating-pod behaviour; default),
- ``kill``: it dies instantly and its request is redelivered — never
  lost, but the elapsed processing is wasted.

This bench runs the same reactive allocator on the same MSD burst under
both modes.  Expected shape (asserted): requests are conserved in both
modes; kill mode wastes strictly more work (busy kills > 0, zero under
drain) and its aggregated reward is no better than drain's beyond a small
noise margin.
"""

from benchmarks.conftest import emit, run_once
from repro.baselines.static_alloc import ProportionalToWipAllocator
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_allocator, make_env
from repro.sim.system import SystemConfig
from repro.workflows import build_msd_ensemble
from repro.workload.bursts import MSD_BURSTS


def _run_mode(mode):
    env = make_env(
        build_msd_ensemble(),
        config=SystemConfig(consumer_budget=14, scale_down_mode=mode),
        seed=0,
        background_rates=dict(MSD_BURSTS[0].background_rates),
    )
    result = evaluate_allocator(
        ProportionalToWipAllocator(), env, MSD_BURSTS[0], steps=35
    )
    services = env.system.microservices.values()
    return {
        "mode": mode,
        "completions": result.total_completions(),
        "aggregated_reward": result.aggregated_reward(),
        "busy_kills": sum(ms.consumers_killed_busy for ms in services),
        "conserved": env.system.conservation_ok(),
    }


def _experiment():
    return [_run_mode("drain"), _run_mode("kill")]


def test_scale_down_modes(benchmark):
    rows = run_once(benchmark, _experiment)

    emit()
    emit(format_table(
        ["mode", "completions", "aggregated reward", "busy kills",
         "conserved"],
        [
            [r["mode"], r["completions"], r["aggregated_reward"],
             r["busy_kills"], r["conserved"]]
            for r in rows
        ],
        title="Scale-down semantics on MSD burst 1 (WIP-proportional "
              "allocator)",
    ))

    drain, kill = rows
    assert drain["conserved"] and kill["conserved"]
    assert drain["busy_kills"] == 0
    assert kill["busy_kills"] > 0
    # Wasted work can't make kill mode meaningfully better (2% noise
    # margin: redelivery reorders completions slightly between runs).
    assert drain["aggregated_reward"] >= 1.02 * kill["aggregated_reward"]
