"""Fig. 7 — MSD: MIRAS vs DRS("stream")/HEFT/MONAD/model-free DDPG("rl").

Paper protocol (Section VI-D): train MIRAS via Algorithm 2; train
model-free DDPG with the same number of real interactions; identify MONAD
on the same dataset; then feed each of the three MSD bursts
(300/200/300, 1000/300/400, 500/500/500) into a freshly drained system
with continuous Poisson background traffic and record per-window response
times while each algorithm controls the allocation (C=14).

Expected shape (asserted): MIRAS's aggregated reward beats HEFT, MONAD and
model-free DDPG on every burst and is at least competitive with DRS
(within 10%); model-free DDPG, at equal interaction budget, is the worst
or near-worst learner — the paper's sample-efficiency headline.

Paper scale: 12 x 1,000 interactions; bench scale: 8 x 600.
"""

import pytest

from benchmarks.conftest import emit, is_paper_scale, run_once
from repro.core.config import MirasConfig, ModelConfig, PolicyConfig
from repro.eval.experiments import experiment_fig7_msd_comparison
from repro.eval.reporting import format_comparison, format_series_table
from repro.rl.ddpg import DDPGConfig
from repro.workload.bursts import MSD_BURSTS


def _config():
    if is_paper_scale():
        return MirasConfig.msd_paper()
    return MirasConfig(
        model=ModelConfig(hidden_sizes=(20, 20, 20), epochs=40),
        policy=PolicyConfig(
            ddpg=DDPGConfig(
                hidden_sizes=(256, 256),
                batch_size=64,
                gamma=0.99,
                entropy_weight=0.005,
                actor_weight_decay=1e-4,
            ),
            rollout_length=25,
            rollouts_per_iteration=40,
            patience=8,
            updates_per_step=2,
        ),
        steps_per_iteration=600,
        reset_interval=25,
        iterations=8,
        eval_steps=25,
        eval_burst_scale=20.0,
    )


def test_fig7_msd_burst_comparison(benchmark):
    results = run_once(
        benchmark,
        experiment_fig7_msd_comparison,
        steps=35,
        config=_config(),
        seed=3,
    )

    emit()
    emit(format_comparison(results, "aggregated_reward",
                            title="Fig. 7 (MSD): aggregated reward per burst"))
    emit()
    emit(format_comparison(results, "mean_response_time",
                            title="Fig. 7 (MSD): mean response time (s)"))
    emit()
    emit(format_comparison(results, "total_completions",
                            title="Fig. 7 (MSD): workflows completed"))
    for scenario in results:
        emit()
        emit(format_series_table(
            {name: r.response_time_series()
             for name, r in results[scenario].items()},
            title=f"Per-window response time (s) — {scenario}",
        ))

    for scenario, by_allocator in results.items():
        rewards = {
            name: r.aggregated_reward() for name, r in by_allocator.items()
        }
        miras = rewards["miras"]
        # MIRAS beats every baseline except possibly DRS (where it must be
        # within 10% — our emulated substrate is near-Jackson, DRS's home
        # turf; the paper's shape is "better than or at least as good as").
        assert miras > rewards["heft"], (scenario, rewards)
        assert miras > rewards["monad"], (scenario, rewards)
        assert miras > rewards["rl"], (scenario, rewards)
        assert miras > 1.10 * rewards["stream"], (scenario, rewards)
