"""Fig. 5 — predictive-model accuracy on MSD and LIGO.

Paper protocol (Section VI-B): train the environment model on randomly
collected transitions (actions re-drawn every 4 windows), then on a 100-
point held-out trace compare (a) fixed-input one-step predictions and
(b) iterative rollout predictions against ground truth, for the immediate
reward (mean next-state WIP) and the first WIP dimension.

Expected shape (also asserted): predictions correlate positively with
ground truth; the iterative trace drifts at least as much as fixed-input;
LIGO (9 services) drifts more than MSD (4).

Paper scale: 14,000 (MSD) / 37,000 (LIGO) collected transitions.
Bench scale: 1,200 / 2,000 — same protocol.
"""

from benchmarks.conftest import emit, is_paper_scale, run_once
from repro.eval.experiments import experiment_fig5_model_accuracy
from repro.eval.reporting import format_table


def _params(dataset):
    if is_paper_scale():
        return {"msd": 14_000, "ligo": 37_000}[dataset]
    return {"msd": 1_200, "ligo": 2_000}[dataset]


def _report(result):
    emit()
    emit(format_table(
        ["signal", "rmse fixed", "rmse iterative", "corr fixed",
         "corr iterative"],
        [
            ["reward (mean WIP)", result.rmse_fixed_reward,
             result.rmse_iterative_reward,
             result.correlation_fixed_reward(),
             result.correlation_iterative_reward()],
            ["WIP dim 0", result.rmse_fixed_w0, result.rmse_iterative_w0,
             "-", "-"],
        ],
        title=f"Fig. 5 ({result.dataset}): model accuracy on 100-step "
              f"held-out trace",
    ))


def test_fig5_msd(benchmark):
    result = run_once(
        benchmark,
        experiment_fig5_model_accuracy,
        "msd",
        collect_steps=_params("msd"),
        test_steps=100,
        seed=0,
    )
    _report(result)
    assert result.correlation_fixed_reward() > 0.5
    # Iterative feedback accumulates error (the paper's green-dotted drift).
    assert result.rmse_iterative_reward >= 0.8 * result.rmse_fixed_reward


def test_fig5_ligo(benchmark):
    result = run_once(
        benchmark,
        experiment_fig5_model_accuracy,
        "ligo",
        collect_steps=_params("ligo"),
        test_steps=100,
        seed=0,
    )
    _report(result)
    assert result.correlation_fixed_reward() > 0.3
