#!/usr/bin/env python3
"""Training-path throughput benchmark + regression gate.

Measures the two perf-opt paths of the synthetic-rollout engine and
writes ``BENCH_training.json`` at the repository root:

- ``rollout.speedup`` — synthetic-rollout transitions/second of the
  batched engine (``BatchedModelEnv`` + ``act_batch`` + ``add_batch``
  at K=``--rollout-batch``) over the serial engine (``ModelEnv`` with
  per-step ``act``/``store``).  Both paths run the same trained
  refined model and the same number of transitions; the ratio is the
  machine-independent quantity the CI gate checks (>= 3x).
- ``parallel`` — experiment cells/second of the serial in-process
  runner vs ``run_cells`` with worker processes, on quick fig5 cells,
  plus a byte-equality check of the two results JSONs.  On a one-core
  machine the pool is expected to be *slower* (spawn overhead, no
  parallelism); the numbers are reported honestly and the gate only
  requires byte-identical output.
- ``distributed`` — real-environment collection steps/second of the
  deterministic logical interleave (1 worker) vs the physical process
  pool (``--collect-workers`` workers), on the same episode plan, plus
  byte-equality checks: logical N-worker vs logical 1-worker, and
  physical vs logical.  The >= 2x speedup gate is enforced only when
  ``os.cpu_count() >= 4`` (a one-core container cannot exhibit process
  parallelism; equality is still gated everywhere).

``--check`` exits non-zero when the batched speedup falls below 3x,
the parallel runner's JSON differs from the serial runner's, the
distributed merges are not byte-identical, or (on >= 4-core hosts)
physical collection is below the 2x floor.

Run:  PYTHONPATH=src python benchmarks/run_training_bench.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.dataset import TransitionDataset
from repro.core.environment_model import EnvironmentModel
from repro.core.model_env import BatchedModelEnv, ModelEnv
from repro.core.refinement import RefinedModel
from repro.eval.parallel import (
    ExperimentCell,
    results_to_json,
    run_cells,
)
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.distributed import (
    DistributedCollector,
    EnvSpec,
    episode_plan,
    policy_payload,
)
from repro.utils.rng import RngStream

#: Gate: batched rollout generation must be at least this much faster.
SPEEDUP_FLOOR = 3.0

#: Gate: physical multi-worker collection must be at least this much
#: faster than single-worker logical collection — enforced only on
#: hosts with >= DISTRIBUTED_MIN_CPUS cores (a one-core container has
#: no parallelism to measure; byte-equality is still gated there).
DISTRIBUTED_SPEEDUP_FLOOR = 2.0
DISTRIBUTED_MIN_CPUS = 4

ARTIFACT = "BENCH_training.json"

STATE_DIM = 4
ACTION_DIM = 4
BUDGET = 14

#: Quick fig5 schedule for the parallel-runner comparison (same values
#: as repro.eval.parallel.QUICK_PARAMS, pinned here so the benchmark's
#: workload can't drift when CI schedules change).
FIG5_FAST = {
    "collect_steps": 24,
    "test_steps": 8,
    "action_hold": 2,
    "model_epochs": 2,
}


def _trained_refined_model(seed: int = 0):
    """A trained EnvironmentModel wrapped in Algorithm 1, plus its data."""
    data_rng = RngStream("bench-data", np.random.SeedSequence(seed))
    dataset = TransitionDataset(STATE_DIM, ACTION_DIM)
    for _ in range(400):
        state = data_rng.uniform(0.0, 30.0, size=STATE_DIM)
        action = data_rng.uniform(0.0, BUDGET / ACTION_DIM, size=ACTION_DIM)
        next_state = np.maximum(
            state - action + data_rng.normal(0.0, 0.5, size=STATE_DIM), 0.0
        )
        dataset.add(state, action, next_state)
    model = EnvironmentModel(
        STATE_DIM,
        ACTION_DIM,
        rng=RngStream("bench-model", np.random.SeedSequence(seed + 1)),
    )
    model.fit(dataset, epochs=5, batch_size=64)
    refined = RefinedModel.from_dataset(
        model,
        dataset,
        rng=RngStream("bench-refine", np.random.SeedSequence(seed + 2)),
    )
    return refined, dataset


def _ddpg(seed: int = 0) -> DDPGAgent:
    return DDPGAgent(
        STATE_DIM,
        ACTION_DIM,
        config=DDPGConfig(hidden_sizes=(32, 32), batch_size=32),
        rng=RngStream("bench-ddpg", np.random.SeedSequence(seed)),
    )


def _time_serial_rollouts(transitions: int, rollout_length: int) -> float:
    refined, dataset = _trained_refined_model()
    agent = _ddpg()
    env = ModelEnv(
        refined,
        dataset,
        consumer_budget=BUDGET,
        rollout_length=rollout_length,
        rng=RngStream("bench-env", np.random.SeedSequence(9)),
    )
    generated = 0
    start = time.perf_counter()
    while generated < transitions:
        state = env.reset()
        agent.refresh_perturbation()
        done = False
        while not done:
            simplex = agent.act(state, explore=True)
            executed = env.allocation_from_simplex(simplex)
            next_state, reward, done = env.step(executed)
            agent.store(state, executed / BUDGET, reward, next_state)
            state = next_state
            generated += 1
    return time.perf_counter() - start


def _time_batched_rollouts(
    transitions: int, rollout_length: int, batch: int
) -> float:
    refined, dataset = _trained_refined_model()
    agent = _ddpg()
    env = BatchedModelEnv(
        refined,
        dataset,
        consumer_budget=BUDGET,
        rollout_length=rollout_length,
        batch_size=batch,
        rng=RngStream("bench-env", np.random.SeedSequence(9)),
    )
    generated = 0
    start = time.perf_counter()
    while generated < transitions:
        states = env.reset()
        agent.refresh_perturbation()
        done = False
        while not done:
            simplexes = agent.act_batch(states, explore=True)
            executed = env.allocation_from_simplex_batch(simplexes)
            next_states, rewards, done = env.step(executed)
            agent.store_batch(states, executed / BUDGET, rewards, next_states)
            states = next_states
            generated += batch
    return time.perf_counter() - start


def _bench_rollouts(transitions: int, rollout_length: int, batch: int,
                    repeats: int) -> dict:
    serial_s = min(
        _time_serial_rollouts(transitions, rollout_length)
        for _ in range(repeats)
    )
    batched_s = min(
        _time_batched_rollouts(transitions, rollout_length, batch)
        for _ in range(repeats)
    )
    return {
        "transitions": transitions,
        "rollout_length": rollout_length,
        "rollout_batch": batch,
        "serial_steps_per_second": transitions / serial_s,
        "batched_steps_per_second": transitions / batched_s,
        "speedup": serial_s / batched_s,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def _bench_parallel(cells: int, workers: int, repeats: int) -> dict:
    grid = [
        ExperimentCell.make("fig5", rep, FIG5_FAST) for rep in range(cells)
    ]
    serial_s = float("inf")
    parallel_s = float("inf")
    serial_json = parallel_json = None
    for _ in range(repeats):
        start = time.perf_counter()
        serial = run_cells(grid, root_seed=0, workers=1)
        serial_s = min(serial_s, time.perf_counter() - start)
        serial_json = results_to_json(serial)

        start = time.perf_counter()
        parallel = run_cells(grid, root_seed=0, workers=workers)
        parallel_s = min(parallel_s, time.perf_counter() - start)
        parallel_json = results_to_json(parallel)
    return {
        "cells": cells,
        "workers": workers,
        "serial_cells_per_second": cells / serial_s,
        "parallel_cells_per_second": cells / parallel_s,
        "parallel_matches_serial": parallel_json == serial_json,
        "cpu_count": os.cpu_count(),
    }


def _blocks_equal(a: list, b: list) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x.episode, x.lane, x.steps) != (y.episode, y.lane, y.steps):
            return False
        for field in ("states", "executed", "rewards", "next_states"):
            if not np.array_equal(getattr(x, field), getattr(y, field)):
                return False
        if x.episode_return != y.episode_return:
            return False
        if x.sim_time_end != y.sim_time_end:
            return False
    return True


def _bench_distributed(steps: int, workers: int, repeats: int) -> dict:
    spec = EnvSpec.make(
        "repro.eval.experiments:build_training_env", dataset="msd"
    )
    payload = policy_payload(_ddpg())
    plan = episode_plan(steps, 25, lanes=4, root_seed=0)

    def collect(mode, n):
        collector = DistributedCollector(spec, workers=n, mode=mode)
        start = time.perf_counter()
        blocks = collector.collect(payload, plan, random_fraction=0.5)
        return time.perf_counter() - start, blocks

    logical_s = float("inf")
    physical_s = float("inf")
    logical_blocks = logical_n_blocks = physical_blocks = None
    for _ in range(repeats):
        elapsed, logical_blocks = collect("logical", 1)
        logical_s = min(logical_s, elapsed)
        _, logical_n_blocks = collect("logical", workers)
        elapsed, physical_blocks = collect("physical", workers)
        physical_s = min(physical_s, elapsed)

    cpu_count = os.cpu_count() or 1
    return {
        "collect_steps": steps,
        "episodes": len(plan),
        "workers": workers,
        "logical_steps_per_second": steps / logical_s,
        "physical_steps_per_second": steps / physical_s,
        "speedup": logical_s / physical_s,
        "speedup_floor": DISTRIBUTED_SPEEDUP_FLOOR,
        "gate_enforced": cpu_count >= DISTRIBUTED_MIN_CPUS,
        "logical_match": _blocks_equal(logical_blocks, logical_n_blocks),
        "physical_matches_logical": _blocks_equal(
            logical_blocks, physical_blocks
        ),
        "cpu_count": cpu_count,
    }


def run_benchmark(transitions: int, rollout_length: int, batch: int,
                  cells: int, workers: int, repeats: int,
                  collect_steps: int, collect_workers: int) -> dict:
    return {
        "artifact_version": 2,
        "rollout": _bench_rollouts(
            transitions, rollout_length, batch, repeats
        ),
        "parallel": _bench_parallel(cells, workers, repeats),
        "distributed": _bench_distributed(
            collect_steps, collect_workers, repeats
        ),
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transitions", type=int, default=800,
                        help="synthetic transitions per rollout measurement")
    parser.add_argument("--rollout-length", type=int, default=25,
                        help="steps per synthetic episode")
    parser.add_argument("--rollout-batch", type=int, default=16,
                        help="K for the batched engine")
    parser.add_argument("--cells", type=int, default=2,
                        help="quick fig5 cells for the parallel comparison")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the parallel comparison")
    parser.add_argument("--collect-steps", type=int, default=200,
                        help="real-environment steps for the distributed "
                             "collection comparison")
    parser.add_argument("--collect-workers", type=int, default=4,
                        help="physical worker processes for the distributed "
                             "collection comparison")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per configuration (best-of)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / ARTIFACT),
        help="where to write the JSON artifact",
    )
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on speedup/equality gate failure")
    args = parser.parse_args(argv)

    result = run_benchmark(
        args.transitions, args.rollout_length, args.rollout_batch,
        args.cells, args.workers, args.repeats,
        args.collect_steps, args.collect_workers,
    )
    Path(args.output).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    rollout = result["rollout"]
    parallel = result["parallel"]
    distributed = result["distributed"]
    print(f"wrote {args.output}")
    print(
        f"rollout generation: serial "
        f"{rollout['serial_steps_per_second']:,.0f} steps/s, batched "
        f"(K={rollout['rollout_batch']}) "
        f"{rollout['batched_steps_per_second']:,.0f} steps/s "
        f"-> {rollout['speedup']:.1f}x (floor {SPEEDUP_FLOOR}x)"
    )
    print(
        f"experiment cells: serial "
        f"{parallel['serial_cells_per_second']:.2f} cells/s, "
        f"{parallel['workers']} workers "
        f"{parallel['parallel_cells_per_second']:.2f} cells/s "
        f"({parallel['cpu_count']} cpu), outputs "
        + ("match" if parallel["parallel_matches_serial"] else "DIFFER")
    )
    gate_note = (
        "enforced" if distributed["gate_enforced"]
        else f"not enforced, < {DISTRIBUTED_MIN_CPUS} cpus"
    )
    print(
        f"distributed collection: logical "
        f"{distributed['logical_steps_per_second']:,.0f} steps/s, physical "
        f"({distributed['workers']} workers) "
        f"{distributed['physical_steps_per_second']:,.0f} steps/s "
        f"-> {distributed['speedup']:.2f}x "
        f"(floor {DISTRIBUTED_SPEEDUP_FLOOR}x, {gate_note}), merges "
        + ("match" if distributed["logical_match"]
           and distributed["physical_matches_logical"] else "DIFFER")
    )

    failures = []
    if rollout["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"batched speedup {rollout['speedup']:.2f}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    if not parallel["parallel_matches_serial"]:
        failures.append("parallel runner output differs from serial runner")
    if not distributed["logical_match"]:
        failures.append(
            "logical multi-worker merge differs from single-worker merge"
        )
    if not distributed["physical_matches_logical"]:
        failures.append(
            "physical collection differs from the logical interleave"
        )
    if (
        distributed["gate_enforced"]
        and distributed["speedup"] < DISTRIBUTED_SPEEDUP_FLOOR
    ):
        failures.append(
            f"distributed speedup {distributed['speedup']:.2f}x is below "
            f"the {DISTRIBUTED_SPEEDUP_FLOOR}x floor"
        )
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
