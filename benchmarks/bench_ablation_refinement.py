"""Ablation — Lend-Giveback model refinement (Section IV-C2, Algorithm 1).

The paper motivates the refinement by the model's unreliability near the
WIP boundary (w_j ~ 0), where arrival randomness dominates and the raw
network's output would mislead the policy.

This bench trains the MSD environment model, splits a held-out trace into
boundary transitions (some dimension below tau) and interior transitions,
and reports the one-step RMSE of the raw vs refined model on both sets.

Expected shape (asserted): the refinement leaves interior predictions
untouched (identical RMSE) and does not catastrophically degrade boundary
predictions (within 2x of raw — its benefit in the paper is to *policy
learning*, not raw RMSE, by removing the spurious w-m correlation at the
boundary).
"""

import math

from benchmarks.conftest import emit, run_once
from repro.eval.experiments import ablation_refinement
from repro.eval.reporting import format_table


def test_refinement_boundary_behaviour(benchmark):
    out = run_once(
        benchmark,
        ablation_refinement,
        "msd",
        collect_steps=1200,
        test_steps=300,
        seed=0,
    )

    emit()
    emit(format_table(
        ["region", "samples", "raw RMSE", "refined RMSE"],
        [
            ["boundary (some w_j < tau)", out["boundary_samples"],
             out["boundary_rmse_raw"], out["boundary_rmse_refined"]],
            ["interior", out["interior_samples"],
             out["interior_rmse_raw"], out["interior_rmse_refined"]],
        ],
        title="Lend-Giveback refinement (Algorithm 1) on held-out MSD data",
    ))

    assert out["boundary_samples"] > 0, "no boundary transitions sampled"
    # Interior predictions pass through the raw model untouched.
    assert math.isclose(
        out["interior_rmse_raw"], out["interior_rmse_refined"],
        rel_tol=1e-9, abs_tol=1e-9,
    )
    # Boundary predictions stay sane.
    assert out["boundary_rmse_refined"] <= 2.0 * out["boundary_rmse_raw"]
